//! A named collection of devices used for calibration and committees.

use crate::device::Device;

/// An ordered, named collection of simulated devices.
///
/// Calibration (in `tao-calib`) sweeps all ordered device *pairs* of a
/// fleet; committee sampling (in `tao-protocol`) draws adjudicators from a
/// fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct Fleet {
    devices: Vec<Device>,
}

impl Fleet {
    /// Creates a fleet from a device list.
    pub fn new(devices: Vec<Device>) -> Self {
        Fleet { devices }
    }

    /// The paper's four-GPU calibration fleet.
    pub fn standard() -> Self {
        Fleet {
            devices: Device::standard_fleet(),
        }
    }

    /// Devices in order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the fleet has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Looks a device up by name.
    pub fn get(&self, name: &str) -> Option<&Device> {
        self.devices.iter().find(|d| d.name() == name)
    }

    /// All ordered pairs `(i, j)` with `i < j` (the calibration sweep).
    pub fn pairs(&self) -> Vec<(&Device, &Device)> {
        let mut out = Vec::new();
        for i in 0..self.devices.len() {
            for j in i + 1..self.devices.len() {
                out.push((&self.devices[i], &self.devices[j]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_fleet_pairs() {
        let f = Fleet::standard();
        assert_eq!(f.len(), 4);
        assert_eq!(f.pairs().len(), 6);
        assert!(!f.is_empty());
    }

    #[test]
    fn lookup_by_name() {
        let f = Fleet::standard();
        assert!(f.get("sim-a100").is_some());
        assert!(f.get("nonexistent").is_none());
    }

    #[test]
    fn empty_fleet() {
        let f = Fleet::new(vec![]);
        assert!(f.is_empty());
        assert!(f.pairs().is_empty());
    }
}
