//! A named collection of devices used for calibration and committees.

use crate::device::Device;

/// An ordered, named collection of simulated devices.
///
/// Calibration (in `tao-calib`) sweeps all ordered device *pairs* of a
/// fleet; committee sampling (in `tao-protocol`) draws adjudicators from a
/// fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct Fleet {
    devices: Vec<Device>,
}

impl Fleet {
    /// Creates a fleet from a device list.
    pub fn new(devices: Vec<Device>) -> Self {
        Fleet { devices }
    }

    /// The paper's four-GPU calibration fleet.
    pub fn standard() -> Self {
        Fleet {
            devices: Device::standard_fleet(),
        }
    }

    /// Devices in order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the fleet has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Looks a device up by name.
    pub fn get(&self, name: &str) -> Option<&Device> {
        self.devices.iter().find(|d| d.name() == name)
    }

    /// Deterministically samples one device from a 64-bit seed (SplitMix64
    /// finalizer over the seed, reduced modulo the fleet size). Campaign
    /// harnesses use this to assign heterogeneous operator hardware
    /// reproducibly: the same seed always lands on the same device.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet.
    pub fn sample_device(&self, seed: u64) -> &Device {
        assert!(!self.devices.is_empty(), "cannot sample an empty fleet");
        // SplitMix64 finalizer: full-avalanche mix so consecutive seeds
        // don't stripe across the (small) fleet.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        &self.devices[(z % self.devices.len() as u64) as usize]
    }

    /// All ordered pairs `(i, j)` with `i < j` (the calibration sweep).
    pub fn pairs(&self) -> Vec<(&Device, &Device)> {
        let mut out = Vec::new();
        for i in 0..self.devices.len() {
            for j in i + 1..self.devices.len() {
                out.push((&self.devices[i], &self.devices[j]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_fleet_pairs() {
        let f = Fleet::standard();
        assert_eq!(f.len(), 4);
        assert_eq!(f.pairs().len(), 6);
        assert!(!f.is_empty());
    }

    #[test]
    fn lookup_by_name() {
        let f = Fleet::standard();
        assert!(f.get("sim-a100").is_some());
        assert!(f.get("nonexistent").is_none());
    }

    #[test]
    fn sampling_is_deterministic_and_covers_the_fleet() {
        let f = Fleet::standard();
        for seed in 0..16u64 {
            assert_eq!(f.sample_device(seed).name(), f.sample_device(seed).name());
        }
        // Consecutive seeds must reach every device of the small fleet.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            seen.insert(f.sample_device(seed).name().to_string());
        }
        assert_eq!(seen.len(), f.len(), "sampler missed devices: {seen:?}");
    }

    #[test]
    fn empty_fleet() {
        let f = Fleet::new(vec![]);
        assert!(f.is_empty());
        assert!(f.pairs().is_empty());
    }
}
