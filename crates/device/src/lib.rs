//! # tao-device
//!
//! Simulated heterogeneous accelerator profiles.
//!
//! The TAO paper calibrates against four real NVIDIA GPUs (RTX 4090, RTX
//! 6000, A100, H100) whose kernels differ in *IEEE-754-visible* ways:
//! reduction/accumulation order, fused-multiply-add contraction, and
//! transcendental-intrinsic implementations with different documented ULP
//! errors. This crate reproduces that heterogeneity with named device
//! profiles wrapping a [`tao_tensor::KernelConfig`]. Deviations between two
//! profiles are genuine rounding differences from re-ordered IEEE-754
//! arithmetic — the identical mechanism as cross-GPU nondeterminism — not
//! injected noise.
//!
//! # Examples
//!
//! ```
//! use tao_device::Device;
//!
//! let fleet = Device::standard_fleet();
//! assert_eq!(fleet.len(), 4);
//! let a100 = Device::a100_like();
//! assert_eq!(a100.name(), "sim-a100");
//! ```

pub mod device;
pub mod fleet;

pub use device::{Device, DeviceClass};
pub use fleet::Fleet;
