//! Seeded synthetic datasets standing in for ImageNet / DBpedia / C4.
//!
//! Calibration and attack experiments need representative input
//! *distributions* per model family, not the actual corpora: Zipf-law
//! token streams reproduce the heavy-tailed vocabulary statistics of text
//! corpora, and class-conditioned Gaussian images give the CNN calibrated
//! per-class structure.

use rand::Rng;
use rand::SeedableRng;
use tao_tensor::Tensor;

/// A Zipf(1.0)-distributed token sequence over `vocab` ids, as an
/// integer-valued f32 tensor (the graph-embedding input convention).
pub fn zipf_tokens(seq: usize, vocab: usize, seed: u64) -> Tensor<f32> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    // Inverse-CDF sampling over unnormalized weights 1/rank.
    let weights: Vec<f64> = (1..=vocab).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    let data = (0..seq)
        .map(|_| {
            let mut u = rng.gen_range(0.0..total);
            let mut id = 0usize;
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    id = i;
                    break;
                }
                u -= w;
            }
            id as f32
        })
        .collect();
    Tensor::from_vec(data, &[seq]).expect("length matches seq")
}

/// A class-conditioned image: a Gaussian blob whose center and per-channel
/// intensity depend on the class, plus seeded pixel noise.
pub fn class_image(channels: usize, size: usize, class: usize, seed: u64) -> Tensor<f32> {
    let mut img = Tensor::<f32>::randn(&[1, channels, size, size], seed).mul_scalar(0.3);
    let cx = (class * 7 + 3) % size;
    let cy = (class * 13 + 5) % size;
    let sigma = (size as f64 / 4.0).max(1.0);
    for c in 0..channels {
        let gain = 1.0 + 0.5 * ((class + c) % 3) as f32;
        for y in 0..size {
            for x in 0..size {
                let d2 = ((x as f64 - cx as f64).powi(2) + (y as f64 - cy as f64).powi(2))
                    / (2.0 * sigma * sigma);
                let bump = (-d2).exp() as f32 * gain;
                let idx = (c * size + y) * size + x;
                img.data_mut()[idx] += bump;
            }
        }
    }
    img
}

/// A calibration dataset of `n` token-id samples.
pub fn token_dataset(n: usize, seq: usize, vocab: usize, seed: u64) -> Vec<Vec<Tensor<f32>>> {
    (0..n)
        .map(|i| vec![zipf_tokens(seq, vocab, seed + i as u64)])
        .collect()
}

/// A calibration dataset of `n` class-conditioned images cycling over
/// `classes` classes.
pub fn image_dataset(
    n: usize,
    channels: usize,
    size: usize,
    classes: usize,
    seed: u64,
) -> Vec<Vec<Tensor<f32>>> {
    (0..n)
        .map(|i| {
            vec![class_image(
                channels,
                size,
                i % classes.max(1),
                seed + i as u64,
            )]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_tokens_valid_and_skewed() {
        let t = zipf_tokens(2_000, 50, 1);
        assert!(t
            .data()
            .iter()
            .all(|&v| (0.0..50.0).contains(&v) && v.fract() == 0.0));
        // Rank-0 tokens dominate rank-30 tokens under Zipf.
        let count = |id: f32| t.data().iter().filter(|&&v| v == id).count();
        assert!(count(0.0) > count(30.0) * 2);
    }

    #[test]
    fn zipf_is_seeded() {
        assert_eq!(zipf_tokens(32, 20, 5).data(), zipf_tokens(32, 20, 5).data());
        assert_ne!(zipf_tokens(32, 20, 5).data(), zipf_tokens(32, 20, 6).data());
    }

    #[test]
    fn class_images_differ_by_class() {
        let a = class_image(3, 16, 0, 1);
        let b = class_image(3, 16, 5, 1);
        assert_eq!(a.dims(), &[1, 3, 16, 16]);
        assert_ne!(a.data(), b.data());
        assert!(a.all_finite());
    }

    #[test]
    fn dataset_builders_sizes() {
        assert_eq!(token_dataset(4, 8, 32, 0).len(), 4);
        let imgs = image_dataset(3, 3, 8, 10, 0);
        assert_eq!(imgs.len(), 3);
        assert_eq!(imgs[0][0].dims(), &[1, 3, 8, 8]);
    }
}
