//! Autoregressive greedy decoding for the Qwen-style decoder — the
//! multi-step text-generation workload of §7.
//!
//! Each step executes the decoder graph on the current window and selects
//! the next token from the last position's logits. Token selection is the
//! discrete decision the paper's tie-break discussion targets: without a
//! committed rule, tolerance-level logit drift can flip an argmax and turn
//! numerical noise into divergent generations.

use tao_graph::{execute, execute_observed, forward, forward_observed, BufferPool};
use tao_merkle::{Digest, StreamingCommitter, TokenChain};
use tao_tensor::{KernelConfig, Tensor};

use crate::common::Model;
use crate::qwen::QwenConfig;

/// One decoded step: the chosen token and the last-position logits it was
/// chosen from (the step state a temporal commitment would cover).
#[derive(Debug, Clone)]
pub struct DecodeStep {
    /// Selected token id.
    pub token: usize,
    /// The logits lane the selection was made from.
    pub logits: Vec<f32>,
}

/// Token-selection policy for decoding.
pub trait SelectToken {
    /// Chooses a token index from a logits lane at a given step.
    fn select(&self, logits: &[f32], step: u64) -> Option<usize>;
}

/// Plain argmax (ties broken by lowest index; *not* drift-stable).
#[derive(Debug, Clone, Copy, Default)]
pub struct Argmax;

impl SelectToken for Argmax {
    fn select(&self, logits: &[f32], _step: u64) -> Option<usize> {
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
    }
}

/// Greedy-decodes `steps` tokens starting from `prompt` (a full-window
/// token-id tensor). The window slides: the oldest token is dropped and
/// the new one appended, keeping the graph shape static.
///
/// # Errors
///
/// Returns an error when a forward pass fails.
pub fn greedy_decode(
    model: &Model,
    cfg: QwenConfig,
    prompt: &Tensor<f32>,
    steps: usize,
    kernel: &KernelConfig,
    policy: &impl SelectToken,
) -> Result<Vec<DecodeStep>, tao_graph::GraphError> {
    let mut window = prompt.clone();
    let mut out = Vec::with_capacity(steps);
    // The decode loop only reads the logits, so it runs on the pooled
    // outputs-only executor: parameters are Arc-shared (no per-step weight
    // copies) and each step's intermediates recycle through one pool.
    // Bit-identical to the trace executor — same kernels, same order.
    let logits_pos = model
        .graph
        .outputs()
        .iter()
        .position(|&id| id == model.logits);
    let mut pool = BufferPool::new();
    for step in 0..steps {
        let logits_value;
        let logits = match logits_pos {
            Some(pos) => {
                let mut outputs = forward(&model.graph, std::slice::from_ref(&window), kernel, &mut pool)?;
                logits_value = outputs.swap_remove(pos);
                &logits_value
            }
            None => {
                // Logits are not a declared graph output (not the case for
                // the in-tree decoders): fall back to the trace executor.
                let exec = execute(&model.graph, std::slice::from_ref(&window), kernel, None)?;
                logits_value = exec.value(model.logits)?.clone();
                &logits_value
            }
        };
        let lane = logits.data()[logits.len() - cfg.vocab..].to_vec();
        let token = policy.select(&lane, step as u64).unwrap_or(0);
        out.push(DecodeStep {
            token,
            logits: lane,
        });
        // Slide the window.
        let mut ids = window.data()[1..].to_vec();
        ids.push(token as f32);
        window = Tensor::from_vec(ids, &[cfg.seq]).expect("window keeps its shape");
    }
    Ok(out)
}

/// Incremental commitment over a decode session: one per-step trace root
/// plus a prefix-stable [`TokenChain`] binding `(step, token, step_root)`
/// triples in order.
///
/// Appending token `n+1` extends the chain without rehashing the prefix,
/// so a long autoregressive session stays disputable at token granularity:
/// `chain.root_at(t)` commits steps `0..=t`, and any single step can be
/// contested against its own `step_roots[t]` with the usual per-node
/// bisection — no recommitment of earlier tokens required.
#[derive(Debug, Clone)]
pub struct DecodeCommitment {
    /// Per-step trace-commitment roots (one full forward pass each),
    /// streamed through the pass rather than hashed post hoc.
    pub step_roots: Vec<Digest>,
    /// Rolling chain over `(step, token, step_root)`; see [`TokenChain`].
    pub chain: TokenChain,
}

/// [`greedy_decode`] plus per-token incremental commitments: each step's
/// forward pass streams its node values through a [`StreamingCommitter`]
/// (hashing overlaps compute on multi-core hosts) and the resulting step
/// root is appended to a prefix-stable [`TokenChain`].
///
/// Decoded tokens and logits are bit-identical to [`greedy_decode`] — the
/// observer only reads values the executor already produced.
///
/// # Errors
///
/// Returns an error when a forward pass fails.
pub fn greedy_decode_committed(
    model: &Model,
    cfg: QwenConfig,
    prompt: &Tensor<f32>,
    steps: usize,
    kernel: &KernelConfig,
    policy: &impl SelectToken,
) -> Result<(Vec<DecodeStep>, DecodeCommitment), tao_graph::GraphError> {
    let mut window = prompt.clone();
    let mut out = Vec::with_capacity(steps);
    let mut step_roots = Vec::with_capacity(steps);
    let mut chain = TokenChain::new();
    let logits_pos = model
        .graph
        .outputs()
        .iter()
        .position(|&id| id == model.logits);
    let mut pool = BufferPool::new();
    for step in 0..steps {
        // A fresh committer per step: each token's forward pass gets its
        // own trace root, so disputes land on one step, not the session.
        let mut committer = StreamingCommitter::new(model.graph.len());
        let logits_value;
        let logits = match logits_pos {
            Some(pos) => {
                let mut outputs = forward_observed(
                    &model.graph,
                    std::slice::from_ref(&window),
                    kernel,
                    &mut pool,
                    &mut committer,
                )?;
                logits_value = outputs.swap_remove(pos);
                &logits_value
            }
            None => {
                let exec = execute_observed(
                    &model.graph,
                    std::slice::from_ref(&window),
                    kernel,
                    None,
                    &mut committer,
                )?;
                logits_value = exec.value(model.logits)?.clone();
                &logits_value
            }
        };
        let step_root = committer.finish().root();
        let lane = logits.data()[logits.len() - cfg.vocab..].to_vec();
        let token = policy.select(&lane, step as u64).unwrap_or(0);
        chain.append(token as u64, &step_root);
        step_roots.push(step_root);
        out.push(DecodeStep {
            token,
            logits: lane,
        });
        let mut ids = window.data()[1..].to_vec();
        ids.push(token as f32);
        window = Tensor::from_vec(ids, &[cfg.seq]).expect("window keeps its shape");
    }
    Ok((out, DecodeCommitment { step_roots, chain }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qwen;

    #[test]
    fn decode_is_deterministic_per_kernel() {
        let cfg = QwenConfig::small();
        let model = qwen::build(cfg, 3);
        let prompt = qwen::sample_ids(cfg, 1);
        let k = KernelConfig::reference();
        let a = greedy_decode(&model, cfg, &prompt, 5, &k, &Argmax).unwrap();
        let b = greedy_decode(&model, cfg, &prompt, 5, &k, &Argmax).unwrap();
        let ta: Vec<usize> = a.iter().map(|s| s.token).collect();
        let tb: Vec<usize> = b.iter().map(|s| s.token).collect();
        assert_eq!(ta, tb);
        assert!(ta.iter().all(|&t| t < cfg.vocab));
    }

    #[test]
    fn decode_depends_on_prompt() {
        let cfg = QwenConfig::small();
        let model = qwen::build(cfg, 3);
        let k = KernelConfig::reference();
        let a = greedy_decode(&model, cfg, &qwen::sample_ids(cfg, 1), 6, &k, &Argmax).unwrap();
        let b = greedy_decode(&model, cfg, &qwen::sample_ids(cfg, 2), 6, &k, &Argmax).unwrap();
        let ta: Vec<usize> = a.iter().map(|s| s.token).collect();
        let tb: Vec<usize> = b.iter().map(|s| s.token).collect();
        assert_ne!(ta, tb, "different prompts should rarely decode identically");
    }

    #[test]
    fn committed_decode_matches_plain_and_is_prefix_stable() {
        let cfg = QwenConfig::small();
        let model = qwen::build(cfg, 3);
        let prompt = qwen::sample_ids(cfg, 1);
        let k = KernelConfig::reference();
        let plain = greedy_decode(&model, cfg, &prompt, 5, &k, &Argmax).unwrap();
        let (committed, c5) =
            greedy_decode_committed(&model, cfg, &prompt, 5, &k, &Argmax).unwrap();
        // Observation never perturbs the decode.
        for (a, b) in plain.iter().zip(&committed) {
            assert_eq!(a.token, b.token);
            assert_eq!(a.logits, b.logits);
        }
        assert_eq!(c5.step_roots.len(), 5);
        assert_eq!(c5.chain.len(), 5);
        // Prefix stability: a 4-step session's chain is literally the
        // 5-step session's chain truncated — no prefix rehashing.
        let (_, c4) = greedy_decode_committed(&model, cfg, &prompt, 4, &k, &Argmax).unwrap();
        assert_eq!(c4.step_roots[..], c5.step_roots[..4]);
        assert_eq!(&c4.chain.root(), c5.chain.root_at(3).unwrap());
        // And the rolling chain matches its post-hoc oracle.
        let steps: Vec<(u64, Digest)> = committed
            .iter()
            .zip(&c5.step_roots)
            .map(|(s, r)| (s.token as u64, *r))
            .collect();
        assert_eq!(TokenChain::from_steps(&steps).root(), c5.chain.root());
    }

    #[test]
    fn steps_carry_full_logits_lane() {
        let cfg = QwenConfig::small();
        let model = qwen::build(cfg, 3);
        let k = KernelConfig::reference();
        let steps = greedy_decode(&model, cfg, &qwen::sample_ids(cfg, 5), 3, &k, &Argmax).unwrap();
        assert_eq!(steps.len(), 3);
        for s in &steps {
            assert_eq!(s.logits.len(), cfg.vocab);
            assert_eq!(s.token, Argmax.select(&s.logits, 0).unwrap());
        }
    }
}
