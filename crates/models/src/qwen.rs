//! A Qwen-style causal decoder (the Qwen3-8B stand-in): token embeddings,
//! pre-RMSNorm decoder layers with causal multi-head attention and SwiGLU
//! FFNs, a final RMSNorm, and a next-token LM head.

use tao_graph::{GraphBuilder, OpKind};

use crate::common::{xavier, Model};
use crate::transformer::{causal_mask_tensor, rms_norm, self_attention, swiglu_ffn, AttnDims};

/// Qwen-style configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QwenConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
    /// Model width.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Decoder layers.
    pub layers: usize,
}

impl QwenConfig {
    /// Laptop-scale stand-in for Qwen3-8B.
    pub fn small() -> Self {
        QwenConfig {
            vocab: 96,
            seq: 8,
            dim: 32,
            heads: 4,
            layers: 2,
        }
    }

    /// Deeper variant for dispute-scaling experiments.
    pub fn deep(layers: usize) -> Self {
        QwenConfig {
            layers,
            ..Self::small()
        }
    }
}

/// Builds the model with seeded weights. Input: `[seq]` token ids; output
/// logits `[seq, vocab]` (next-token prediction reads the last row).
pub fn build(cfg: QwenConfig, seed: u64) -> Model {
    let mut b = GraphBuilder::new(1);
    let ids = b.input(0, "token_ids");
    let mut s = seed * 10_000;
    let mut next = || {
        s += 1;
        s
    };

    let table = b.parameter(
        "model.embed_tokens.weight",
        xavier(&[cfg.vocab, cfg.dim], cfg.vocab, cfg.dim, next()),
    );
    let mut cur = b.op("model.embed_tokens", OpKind::Embedding, &[table, ids]);
    let mask = b.parameter("model.causal_mask", causal_mask_tensor(cfg.seq));

    let d = AttnDims {
        seq: cfg.seq,
        dim: cfg.dim,
        heads: cfg.heads,
    };
    for l in 0..cfg.layers {
        let p = format!("model.layers{l}");
        let norm1 = rms_norm(&mut b, &format!("{p}.input_norm"), cur, cfg.dim);
        let attn = self_attention(&mut b, &format!("{p}.attn"), norm1, d, Some(mask), next());
        let res1 = b.op(format!("{p}.residual1"), OpKind::Add, &[attn, cur]);
        let norm2 = rms_norm(&mut b, &format!("{p}.post_norm"), res1, cfg.dim);
        let ffn = swiglu_ffn(
            &mut b,
            &format!("{p}.mlp"),
            norm2,
            cfg.dim,
            cfg.dim * 3,
            next(),
        );
        cur = b.op(format!("{p}.residual2"), OpKind::Add, &[ffn, res1]);
    }

    let final_norm = rms_norm(&mut b, "model.norm", cur, cfg.dim);
    let lm_head = b.parameter(
        "lm_head.weight",
        xavier(&[cfg.vocab, cfg.dim], cfg.dim, cfg.vocab, next()),
    );
    let logits = b.op("lm_head", OpKind::Linear, &[final_norm, lm_head]);

    let graph = b.finish(vec![logits]).expect("qwen graph is well-formed");
    Model {
        name: "qwen-sim".into(),
        graph,
        logits,
        input_shapes: vec![vec![cfg.seq]],
    }
}

/// Samples a valid token-id input for the model.
pub fn sample_ids(cfg: QwenConfig, seed: u64) -> tao_tensor::Tensor<f32> {
    crate::data::zipf_tokens(cfg.seq, cfg.vocab, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::execute;
    use tao_tensor::KernelConfig;

    #[test]
    fn forward_produces_per_token_logits() {
        let cfg = QwenConfig::small();
        let m = build(cfg, 1);
        let ids = sample_ids(cfg, 3);
        let exec = execute(&m.graph, &[ids], &KernelConfig::reference(), None).unwrap();
        let logits = exec.value(m.logits).unwrap();
        assert_eq!(logits.dims(), &[cfg.seq, cfg.vocab]);
        assert!(logits.all_finite());
    }

    #[test]
    fn causality_prefix_invariance() {
        // Changing the last token must not change the first position's
        // logits (the causal-mask smoke test).
        let cfg = QwenConfig::small();
        let m = build(cfg, 1);
        let mut ids_a = sample_ids(cfg, 4);
        let mut ids_b = ids_a.clone();
        let last = ids_b.len() - 1;
        ids_b.data_mut()[last] = (ids_a.data()[last] as usize % (cfg.vocab - 1)) as f32 + 1.0;
        let la = execute(&m.graph, &[ids_a.clone()], &KernelConfig::reference(), None)
            .unwrap()
            .value(m.logits)
            .unwrap()
            .clone();
        let lb = execute(&m.graph, &[ids_b], &KernelConfig::reference(), None)
            .unwrap()
            .value(m.logits)
            .unwrap()
            .clone();
        ids_a.data_mut()[0] += 0.0;
        for j in 0..cfg.vocab {
            assert_eq!(la.at(&[0, j]).unwrap(), lb.at(&[0, j]).unwrap());
        }
        // But the last position's logits do change.
        let row = cfg.seq - 1;
        assert!((0..cfg.vocab).any(|j| la.at(&[row, j]).unwrap() != lb.at(&[row, j]).unwrap()));
    }

    #[test]
    fn graph_uses_rms_norm_and_silu() {
        let m = build(QwenConfig::small(), 1);
        let mnems: Vec<&str> = m.graph.nodes().iter().map(|n| n.kind.mnemonic()).collect();
        assert!(mnems.contains(&"rms_norm"));
        assert!(mnems.contains(&"silu"));
        assert!(mnems.contains(&"masked_fill"));
        assert!(
            !mnems.contains(&"layer_norm"),
            "Qwen family uses RMSNorm only"
        );
    }

    #[test]
    fn deep_variant_scales() {
        assert!(build(QwenConfig::deep(5), 1).num_ops() > build(QwenConfig::small(), 1).num_ops());
    }
}
