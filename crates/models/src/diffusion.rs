//! A latent-diffusion stand-in: a small UNet epsilon-predictor with group
//! norms, SiLU activations, residual time conditioning, down/upsampling
//! with a skip connection — plus a DDIM-style deterministic sampler that
//! layers time steps over the single-step graph (the multi-step workload
//! of §7).

use tao_graph::{execute, GraphBuilder, NodeId, OpKind};
use tao_tensor::{KernelConfig, Tensor};

use crate::common::{kaiming, xavier, Model};

/// UNet configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffusionConfig {
    /// Latent channels.
    pub latent_channels: usize,
    /// Latent spatial extent (square, must be even).
    pub latent: usize,
    /// Base UNet width.
    pub channels: usize,
    /// Time-embedding width.
    pub temb: usize,
}

impl DiffusionConfig {
    /// Laptop-scale stand-in for Stable Diffusion v1-5's UNet.
    pub fn small() -> Self {
        DiffusionConfig {
            latent_channels: 4,
            latent: 8,
            channels: 8,
            temb: 16,
        }
    }
}

fn gn(b: &mut GraphBuilder, prefix: &str, x: NodeId, c: usize, groups: usize) -> NodeId {
    let gamma = b.parameter(format!("{prefix}.gamma"), Tensor::<f32>::ones(&[c]));
    let beta = b.parameter(format!("{prefix}.beta"), Tensor::<f32>::zeros(&[c]));
    b.op(
        prefix.to_string(),
        OpKind::GroupNorm { groups, eps: 1e-5 },
        &[x, gamma, beta],
    )
}

/// Builds the single-step UNet. Inputs: latent `[1, c_lat, s, s]` and a
/// precomputed sinusoidal time embedding `[temb]`. Output: predicted
/// noise with the latent's shape.
pub fn build(cfg: DiffusionConfig, seed: u64) -> Model {
    let mut b = GraphBuilder::new(2);
    let latent = b.input(0, "latent");
    let temb_in = b.input(1, "time_embedding");
    let mut s = seed * 100_000;
    let mut next = || {
        s += 1;
        s
    };
    let c = cfg.channels;
    let c2 = cfg.channels * 2;

    // Time conditioning MLP -> per-channel bias [1, c, 1, 1].
    let wt1 = b.parameter(
        "time.fc1.weight",
        xavier(&[c, cfg.temb], cfg.temb, c, next()),
    );
    let bt1 = b.parameter("time.fc1.bias", Tensor::<f32>::zeros(&[c]));
    let t1 = b.op("time.fc1", OpKind::Linear, &[temb_in, wt1, bt1]);
    let t1a = b.op("time.silu", OpKind::Silu, &[t1]);
    let wt2 = b.parameter("time.fc2.weight", xavier(&[c, c], c, c, next()));
    let t2 = b.op("time.fc2", OpKind::Linear, &[t1a, wt2]);
    let tcond = b.op("time.reshape", OpKind::Reshape(vec![1, c, 1, 1]), &[t2]);

    // Stem.
    let w_in = b.parameter(
        "conv_in.weight",
        kaiming(
            &[c, cfg.latent_channels, 3, 3],
            cfg.latent_channels * 9,
            next(),
        ),
    );
    let h0 = b.op(
        "conv_in",
        OpKind::Conv2d {
            stride: 1,
            padding: 1,
        },
        &[latent, w_in],
    );
    let h0t = b.op("time.add", OpKind::Add, &[h0, tcond]);

    // Down block (keeps a skip).
    let d_gn = gn(&mut b, "down.norm", h0t, c, 4);
    let d_act = b.op("down.silu", OpKind::Silu, &[d_gn]);
    let w_d = b.parameter("down.conv.weight", kaiming(&[c, c, 3, 3], c * 9, next()));
    let skip = b.op(
        "down.conv",
        OpKind::Conv2d {
            stride: 1,
            padding: 1,
        },
        &[d_act, w_d],
    );
    let w_ds = b.parameter("downsample.weight", kaiming(&[c2, c, 3, 3], c * 9, next()));
    let down = b.op(
        "downsample",
        OpKind::Conv2d {
            stride: 2,
            padding: 1,
        },
        &[skip, w_ds],
    );

    // Middle block.
    let m_gn = gn(&mut b, "mid.norm", down, c2, 4);
    let m_act = b.op("mid.silu", OpKind::Silu, &[m_gn]);
    let w_m = b.parameter("mid.conv.weight", kaiming(&[c2, c2, 3, 3], c2 * 9, next()));
    let mid = b.op(
        "mid.conv",
        OpKind::Conv2d {
            stride: 1,
            padding: 1,
        },
        &[m_act, w_m],
    );

    // Up block: upsample, concat skip, fuse.
    let up = b.op("upsample", OpKind::UpsampleNearest(2), &[mid]);
    let cat = b.op("skip.concat", OpKind::Concat(1), &[up, skip]);
    let w_u = b.parameter(
        "up.conv.weight",
        kaiming(&[c, c2 + c, 3, 3], (c2 + c) * 9, next()),
    );
    let fused = b.op(
        "up.conv",
        OpKind::Conv2d {
            stride: 1,
            padding: 1,
        },
        &[cat, w_u],
    );

    // Output head.
    let o_gn = gn(&mut b, "out.norm", fused, c, 4);
    let o_act = b.op("out.silu", OpKind::Silu, &[o_gn]);
    let w_o = b.parameter(
        "conv_out.weight",
        kaiming(&[cfg.latent_channels, c, 3, 3], c * 9, next()),
    );
    let eps = b.op(
        "conv_out",
        OpKind::Conv2d {
            stride: 1,
            padding: 1,
        },
        &[o_act, w_o],
    );

    let graph = b.finish(vec![eps]).expect("unet graph is well-formed");
    Model {
        name: "diffusion-sim".into(),
        graph,
        logits: eps,
        input_shapes: vec![
            vec![1, cfg.latent_channels, cfg.latent, cfg.latent],
            vec![cfg.temb],
        ],
    }
}

/// Sinusoidal time embedding of width `dim` for step `t`.
pub fn time_embedding(t: usize, dim: usize) -> Tensor<f32> {
    let half = dim / 2;
    let mut v = Vec::with_capacity(dim);
    for i in 0..half {
        let freq = (10_000f64).powf(-(i as f64) / half.max(1) as f64);
        let angle = t as f64 * freq;
        v.push(angle.sin() as f32);
        v.push(angle.cos() as f32);
    }
    v.resize(dim, 0.0);
    Tensor::from_vec(v, &[dim]).expect("length matches dim")
}

/// A cosine alpha-bar schedule over `steps` diffusion steps, floored at
/// `1e-3` so the `1/√ᾱ` amplification in the DDIM update stays bounded
/// (standard cosine-schedule clamping).
fn alpha_bar(step: usize, steps: usize) -> f64 {
    let f = |u: f64| {
        ((u + 0.008) / 1.008 * std::f64::consts::FRAC_PI_2)
            .cos()
            .powi(2)
    };
    (f(step as f64 / steps as f64) / f(0.0)).max(1e-3)
}

/// Runs a deterministic DDIM-style sampling loop: starting from seeded
/// Gaussian noise, each step executes the UNet graph and takes the DDIM
/// update with eta = 0. Returns the latent trajectory, one entry per step
/// (the temporal commitment chain of §7).
///
/// # Errors
///
/// Returns an error when a UNet execution fails.
pub fn ddim_sample(
    model: &Model,
    cfg: DiffusionConfig,
    steps: usize,
    seed: u64,
    kernel: &KernelConfig,
) -> Result<Vec<Tensor<f32>>, tao_graph::GraphError> {
    let mut x = Tensor::<f32>::randn(&model.input_shapes[0], seed);
    let mut trajectory = Vec::with_capacity(steps);
    for i in (1..=steps).rev() {
        let temb = time_embedding(i, cfg.temb);
        let exec = execute(&model.graph, &[x.clone(), temb], kernel, None)?;
        let eps = exec.value(model.logits)?;
        let ab_t = alpha_bar(i, steps);
        let ab_prev = alpha_bar(i - 1, steps);
        // DDIM (eta = 0): x0 = (x - sqrt(1-ab_t) eps) / sqrt(ab_t);
        // x_{t-1} = sqrt(ab_prev) x0 + sqrt(1-ab_prev) eps.
        let sq_t = (ab_t.sqrt()) as f32;
        let sq1_t = ((1.0 - ab_t).sqrt()) as f32;
        let sq_p = (ab_prev.sqrt()) as f32;
        let sq1_p = ((1.0 - ab_prev).sqrt()) as f32;
        let x0 = x
            .sub(&eps.mul_scalar(sq1_t))
            .expect("shapes match")
            .mul_scalar(1.0 / sq_t);
        x = x0
            .mul_scalar(sq_p)
            .add(&eps.mul_scalar(sq1_p))
            .expect("shapes match");
        trajectory.push(x.clone());
    }
    Ok(trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unet_predicts_noise_shape() {
        let cfg = DiffusionConfig::small();
        let m = build(cfg, 1);
        let latent = Tensor::<f32>::randn(&m.input_shapes[0], 2);
        let temb = time_embedding(10, cfg.temb);
        let exec = execute(
            &m.graph,
            &[latent.clone(), temb],
            &KernelConfig::reference(),
            None,
        )
        .unwrap();
        let eps = exec.value(m.logits).unwrap();
        assert_eq!(eps.dims(), latent.dims());
        assert!(eps.all_finite());
    }

    #[test]
    fn skip_connection_concat_present() {
        let m = build(DiffusionConfig::small(), 1);
        let mnems: Vec<&str> = m.graph.nodes().iter().map(|n| n.kind.mnemonic()).collect();
        assert!(mnems.contains(&"cat"));
        assert!(mnems.contains(&"interpolate"));
        assert!(mnems.contains(&"group_norm"));
    }

    #[test]
    fn ddim_trajectory_deterministic_and_finite() {
        let cfg = DiffusionConfig::small();
        let m = build(cfg, 1);
        let a = ddim_sample(&m, cfg, 4, 7, &KernelConfig::reference()).unwrap();
        let b = ddim_sample(&m, cfg, 4, 7, &KernelConfig::reference()).unwrap();
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data(), y.data());
            assert!(x.all_finite());
        }
        let c = ddim_sample(&m, cfg, 4, 8, &KernelConfig::reference()).unwrap();
        assert_ne!(a[3].data(), c[3].data());
    }

    #[test]
    fn time_embedding_varies_with_t() {
        let a = time_embedding(1, 16);
        let b = time_embedding(50, 16);
        assert_ne!(a.data(), b.data());
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn alpha_bar_monotone_decreasing() {
        let steps = 20;
        let mut prev = alpha_bar(0, steps);
        assert!((prev - 1.0).abs() < 1e-12);
        for t in 1..=steps {
            let a = alpha_bar(t, steps);
            assert!(a < prev);
            prev = a;
        }
    }
}
