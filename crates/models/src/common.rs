//! Shared model plumbing: the `Model` wrapper and initializers.

use tao_graph::{Graph, NodeId};
use tao_tensor::Tensor;

/// A traced model ready for the TAO pipeline.
#[derive(Debug, Clone)]
pub struct Model {
    /// Short family name (`"resnet-sim"`, `"bert-sim"`, …).
    pub name: String,
    /// The traced graph in canonical topological order.
    pub graph: Graph,
    /// Node producing the logits (classification or next-token).
    pub logits: NodeId,
    /// Shapes of the expected inputs, in order.
    pub input_shapes: Vec<Vec<usize>>,
}

impl Model {
    /// Number of operators `|V|`.
    pub fn num_ops(&self) -> usize {
        self.graph.len()
    }
}

/// He/Kaiming-style scaled normal initialization.
pub fn kaiming(shape: &[usize], fan_in: usize, seed: u64) -> Tensor<f32> {
    let scale = (2.0 / fan_in.max(1) as f64).sqrt();
    let t = Tensor::<f32>::randn(shape, seed);
    t.mul_scalar(scale as f32)
}

/// Xavier/Glorot-style scaled normal initialization.
pub fn xavier(shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor<f32> {
    let scale = (2.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    Tensor::<f32>::randn(shape, seed).mul_scalar(scale as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializers_scale_with_fan_in() {
        let small_fan = kaiming(&[64, 4], 4, 1);
        let big_fan = kaiming(&[64, 4], 1024, 1);
        assert!(small_fan.max_abs() > big_fan.max_abs());
        let x = xavier(&[8, 8], 8, 8, 2);
        assert!(x.max_abs() < 3.0);
    }
}
