//! Post-training quantization transform over traced models.
//!
//! [`quantize_linears`] rewrites every [`OpKind::Linear`] node to
//! [`OpKind::QuantLinear`] while preserving node ids, edges, parameters and
//! outputs bit-for-bit. The int8 kernels are bit-reproducible across every
//! fleet device *given identical inputs*: a quantized operator fed directly
//! by graph inputs or parameters calibrates to an all-zero envelope and
//! disputes with zero-tolerance strictness, while one fed by float
//! operators inherits their cross-device wobble (a 1-ULP input difference
//! can cross a rounding boundary and move an output element by a whole
//! quantization step), which calibration records as a small but nonzero
//! envelope.

use std::collections::BTreeMap;

use tao_graph::{Graph, OpKind};

use crate::common::Model;

/// Rewrites every `Linear` operator in the model to its int8-quantized
/// counterpart, leaving everything else — node ids, names, edges,
/// parameters, outputs, input shapes — untouched.
///
/// The returned model's name gains an `-int8` suffix so deployments and
/// reports distinguish the variant.
///
/// # Panics
///
/// Never panics in practice: the rewritten node list is structurally
/// identical to the source graph's, which already validated.
pub fn quantize_linears(model: &Model) -> Model {
    let nodes = model
        .graph
        .nodes()
        .iter()
        .map(|n| {
            let mut n = n.clone();
            if matches!(n.kind, OpKind::Linear) {
                n.kind = OpKind::QuantLinear;
            }
            n
        })
        .collect();
    let params: BTreeMap<_, _> = model.graph.params().clone();
    let graph = Graph::new(
        nodes,
        params,
        model.graph.num_inputs(),
        model.graph.outputs().to_vec(),
    )
    .expect("quantize_linears preserves graph structure");
    Model {
        name: format!("{}-int8", model.name),
        graph,
        logits: model.logits,
        input_shapes: model.input_shapes.clone(),
    }
}

/// Number of quantized operators in a model (for reports and tests).
pub fn num_quantized_ops(model: &Model) -> usize {
    model
        .graph
        .nodes()
        .iter()
        .filter(|n| {
            matches!(
                n.kind,
                OpKind::QuantLinear
                    | OpKind::QuantMatmul
                    | OpKind::Quantize { .. }
                    | OpKind::Dequantize { .. }
            )
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::execute;

    #[test]
    fn transformer_quantizes_every_linear() {
        let m = crate::transformer::build(crate::TransformerConfig::small(), 7);
        let linears = m
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Linear))
            .count();
        assert!(linears > 0, "fixture has no linear layers");
        let q = quantize_linears(&m);
        assert_eq!(q.name, format!("{}-int8", m.name));
        assert_eq!(q.graph.len(), m.graph.len());
        assert_eq!(num_quantized_ops(&q), linears);
        assert!(!q
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OpKind::Linear)));
    }

    #[test]
    fn quantized_model_stays_close_to_f32_reference() {
        let cfg = crate::TransformerConfig::small();
        let m = crate::transformer::build(cfg, 7);
        let q = quantize_linears(&m);
        let inputs = vec![crate::transformer::sample_ids(cfg, 3)];
        let kc = tao_tensor::KernelConfig::reference();
        let dense = execute(&m.graph, &inputs, &kc, None).unwrap();
        let quant = execute(&q.graph, &inputs, &kc, None).unwrap();
        let a = dense.value(m.logits).unwrap();
        let b = quant.value(q.logits).unwrap();
        assert_eq!(a.dims(), b.dims());
        // Softmax head: int8 weights move probabilities by a few percent at
        // most on a small model.
        let worst = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 0.2, "quantized logits drifted {worst}");
    }
}
