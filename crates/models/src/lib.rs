//! # tao-models
//!
//! The model zoo for the TAO reproduction: laptop-scale stand-ins for the
//! paper's four evaluation models — a ResNet-style residual CNN, a
//! BERT-style encoder classifier, a Qwen-style causal decoder
//! (RMSNorm/SwiGLU/causal attention), and a latent-diffusion UNet with a
//! DDIM sampler — all traced through the public `tao-graph` builder, plus
//! seeded synthetic datasets standing in for ImageNet/DBpedia/C4.
//!
//! The protocol, bounds, calibration and attacks operate per-operator on
//! the traced graph, so what matters is the *graph shape* of each family
//! (convolution/residual, attention/softmax/layer-norm, causal LM head,
//! UNet skip connections), not the parameter count.

pub mod bert;
pub mod common;
pub mod data;
pub mod decode;
pub mod diffusion;
pub mod quantize;
pub mod qwen;
pub mod resnet;
pub mod transformer;

pub use bert::BertConfig;
pub use common::Model;
pub use decode::{
    greedy_decode, greedy_decode_committed, Argmax, DecodeCommitment, DecodeStep, SelectToken,
};
pub use diffusion::DiffusionConfig;
pub use quantize::{num_quantized_ops, quantize_linears};
pub use qwen::QwenConfig;
pub use resnet::ResNetConfig;
pub use transformer::TransformerConfig;
