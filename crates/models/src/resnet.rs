//! A ResNet-style residual CNN (the ResNet-152 stand-in).
//!
//! Stem convolution + batch norm + ReLU + max pool, a stack of residual
//! blocks (conv→bn→relu→conv→bn, skip connection, relu), global average
//! pooling and a linear classifier — the exact graph shapes (convolution,
//! batch norm, residual adds, pooling) that make the CNN rows of the
//! paper's tables behave the way they do.

use tao_graph::{GraphBuilder, NodeId, OpKind};
use tao_tensor::Tensor;

use crate::common::{kaiming, Model};

/// ResNet-style configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Input image extent (square).
    pub image: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Stem/block channel width.
    pub channels: usize,
    /// Residual blocks.
    pub blocks: usize,
    /// Output classes.
    pub classes: usize,
}

impl ResNetConfig {
    /// A laptop-scale stand-in for ResNet-152 used by tests and benches.
    pub fn small() -> Self {
        ResNetConfig {
            image: 16,
            in_channels: 3,
            channels: 8,
            blocks: 3,
            classes: 10,
        }
    }

    /// A deeper variant for dispute-scaling experiments.
    pub fn deep(blocks: usize) -> Self {
        ResNetConfig {
            blocks,
            ..Self::small()
        }
    }
}

fn bn_params(b: &mut GraphBuilder, prefix: &str, c: usize, seed: u64) -> [NodeId; 4] {
    let gamma = b.parameter(format!("{prefix}.gamma"), Tensor::<f32>::ones(&[c]));
    let beta = b.parameter(format!("{prefix}.beta"), Tensor::<f32>::zeros(&[c]));
    let mean = b.parameter(
        format!("{prefix}.running_mean"),
        Tensor::<f32>::randn(&[c], seed).mul_scalar(0.05),
    );
    let var = b.parameter(
        format!("{prefix}.running_var"),
        Tensor::<f32>::rand_uniform(&[c], 0.9, 1.1, seed + 1),
    );
    [gamma, beta, mean, var]
}

/// Builds the model with seeded weights.
pub fn build(cfg: ResNetConfig, seed: u64) -> Model {
    let mut b = GraphBuilder::new(1);
    let x = b.input(0, "image");
    let mut s = seed;
    let mut next = || {
        s += 1;
        s
    };

    // Stem: 3x3 conv stride 1 pad 1, bn, relu, 2x2 max pool.
    let wstem = b.parameter(
        "stem.conv.weight",
        kaiming(
            &[cfg.channels, cfg.in_channels, 3, 3],
            cfg.in_channels * 9,
            next(),
        ),
    );
    let conv0 = b.op(
        "stem.conv",
        OpKind::Conv2d {
            stride: 1,
            padding: 1,
        },
        &[x, wstem],
    );
    let bn0p = bn_params(&mut b, "stem.bn", cfg.channels, next());
    let bn0 = b.op(
        "stem.bn",
        OpKind::BatchNorm2d { eps: 1e-5 },
        &[conv0, bn0p[0], bn0p[1], bn0p[2], bn0p[3]],
    );
    let relu0 = b.op("stem.relu", OpKind::Relu, &[bn0]);
    let mut cur = b.op(
        "stem.pool",
        OpKind::MaxPool2d {
            kernel: 2,
            stride: 2,
        },
        &[relu0],
    );

    // Residual blocks.
    for blk in 0..cfg.blocks {
        let p = format!("layer{blk}");
        let w1 = b.parameter(
            format!("{p}.conv1.weight"),
            kaiming(
                &[cfg.channels, cfg.channels, 3, 3],
                cfg.channels * 9,
                next(),
            ),
        );
        let c1 = b.op(
            format!("{p}.conv1"),
            OpKind::Conv2d {
                stride: 1,
                padding: 1,
            },
            &[cur, w1],
        );
        let b1p = bn_params(&mut b, &format!("{p}.bn1"), cfg.channels, next());
        let bn1 = b.op(
            format!("{p}.bn1"),
            OpKind::BatchNorm2d { eps: 1e-5 },
            &[c1, b1p[0], b1p[1], b1p[2], b1p[3]],
        );
        let r1 = b.op(format!("{p}.relu1"), OpKind::Relu, &[bn1]);
        let w2 = b.parameter(
            format!("{p}.conv2.weight"),
            kaiming(
                &[cfg.channels, cfg.channels, 3, 3],
                cfg.channels * 9,
                next(),
            ),
        );
        let c2 = b.op(
            format!("{p}.conv2"),
            OpKind::Conv2d {
                stride: 1,
                padding: 1,
            },
            &[r1, w2],
        );
        let b2p = bn_params(&mut b, &format!("{p}.bn2"), cfg.channels, next());
        let bn2 = b.op(
            format!("{p}.bn2"),
            OpKind::BatchNorm2d { eps: 1e-5 },
            &[c2, b2p[0], b2p[1], b2p[2], b2p[3]],
        );
        let add = b.op(format!("{p}.residual"), OpKind::Add, &[bn2, cur]);
        cur = b.op(format!("{p}.relu2"), OpKind::Relu, &[add]);
    }

    // Head: global average pool, flatten, linear classifier.
    let gap = b.op("head.gap", OpKind::AdaptiveAvgPool1x1, &[cur]);
    let flat = b.op("head.flatten", OpKind::FlattenFrom(1), &[gap]);
    let wfc = b.parameter(
        "head.fc.weight",
        kaiming(&[cfg.classes, cfg.channels], cfg.channels, next()),
    );
    let bfc = b.parameter("head.fc.bias", Tensor::<f32>::zeros(&[cfg.classes]));
    let logits = b.op("head.fc", OpKind::Linear, &[flat, wfc, bfc]);

    let graph = b.finish(vec![logits]).expect("resnet graph is well-formed");
    Model {
        name: "resnet-sim".into(),
        graph,
        logits,
        input_shapes: vec![vec![1, cfg.in_channels, cfg.image, cfg.image]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::execute;
    use tao_tensor::KernelConfig;

    #[test]
    fn forward_produces_logits() {
        let m = build(ResNetConfig::small(), 7);
        let x = Tensor::<f32>::randn(&m.input_shapes[0], 1);
        let exec = execute(&m.graph, &[x], &KernelConfig::reference(), None).unwrap();
        let logits = exec.value(m.logits).unwrap();
        assert_eq!(logits.dims(), &[1, 10]);
        assert!(logits.all_finite());
    }

    #[test]
    fn deeper_config_has_more_ops() {
        let small = build(ResNetConfig::small(), 1);
        let deep = build(ResNetConfig::deep(8), 1);
        assert!(deep.num_ops() > small.num_ops());
    }

    #[test]
    fn weights_are_seeded() {
        let a = build(ResNetConfig::small(), 3);
        let b2 = build(ResNetConfig::small(), 3);
        let c = build(ResNetConfig::small(), 4);
        assert_eq!(
            a.graph.param("stem.conv.weight").unwrap().data(),
            b2.graph.param("stem.conv.weight").unwrap().data()
        );
        assert_ne!(
            a.graph.param("stem.conv.weight").unwrap().data(),
            c.graph.param("stem.conv.weight").unwrap().data()
        );
    }

    #[test]
    fn residual_blocks_contain_batch_norm_and_conv() {
        let m = build(ResNetConfig::small(), 1);
        let mnems: Vec<&str> = m.graph.nodes().iter().map(|n| n.kind.mnemonic()).collect();
        assert!(mnems.iter().filter(|&&s| s == "conv2d").count() >= 7);
        assert!(mnems.iter().filter(|&&s| s == "batch_norm2d").count() >= 7);
        assert!(mnems.contains(&"adaptive_avg_pool2d"));
    }
}
