//! Shared transformer building blocks — multi-head attention and FFNs —
//! plus a small post-norm encoder classifier ([`build`]) whose output head
//! is a softmax (the calibration-safe head shape the graph linter checks
//! for).

use tao_graph::{GraphBuilder, NodeId, OpKind};
use tao_tensor::Tensor;

use crate::common::{xavier, Model};

/// Multi-head attention hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct AttnDims {
    /// Sequence length.
    pub seq: usize,
    /// Model width.
    pub dim: usize,
    /// Head count (must divide `dim`).
    pub heads: usize,
}

impl AttnDims {
    /// Per-head width.
    pub fn head_dim(&self) -> usize {
        self.dim / self.heads
    }
}

/// Builds multi-head self-attention over a `[seq, dim]` activation.
///
/// `causal_mask` (a `[seq, seq]` parameter with ones above the diagonal)
/// switches on autoregressive masking via `MaskedFill(-1e9)`.
pub fn self_attention(
    b: &mut GraphBuilder,
    prefix: &str,
    x: NodeId,
    d: AttnDims,
    causal_mask: Option<NodeId>,
    seed: u64,
) -> NodeId {
    let (t, dim, h, hd) = (d.seq, d.dim, d.heads, d.head_dim());
    let mut s = seed;
    let mut w = |b: &mut GraphBuilder, name: &str, out: usize| {
        s += 1;
        b.parameter(
            format!("{prefix}.{name}.weight"),
            xavier(&[out, dim], dim, out, s),
        )
    };
    let wq = w(b, "q", dim);
    let wk = w(b, "k", dim);
    let wv = w(b, "v", dim);
    let wo = w(b, "o", dim);

    let q = b.op(format!("{prefix}.q"), OpKind::Linear, &[x, wq]);
    let k = b.op(format!("{prefix}.k"), OpKind::Linear, &[x, wk]);
    let v = b.op(format!("{prefix}.v"), OpKind::Linear, &[x, wv]);

    // [t, dim] -> [h, t, hd].
    let split = |b: &mut GraphBuilder, name: &str, n: NodeId| {
        let r = b.op(
            format!("{prefix}.{name}.split"),
            OpKind::Reshape(vec![t, h, hd]),
            &[n],
        );
        b.op(
            format!("{prefix}.{name}.perm"),
            OpKind::Permute(vec![1, 0, 2]),
            &[r],
        )
    };
    let qh = split(b, "q", q);
    let kh = split(b, "k", k);
    let vh = split(b, "v", v);

    let kt = b.op(format!("{prefix}.k_t"), OpKind::Transpose(1, 2), &[kh]);
    let scores = b.op(format!("{prefix}.scores"), OpKind::MatMul, &[qh, kt]);
    let scale = 1.0 / (hd as f64).sqrt();
    let scaled = b.op(
        format!("{prefix}.scale"),
        OpKind::MulScalar(scale),
        &[scores],
    );
    let masked = match causal_mask {
        Some(m) => b.op(
            format!("{prefix}.mask"),
            OpKind::MaskedFill(-1e9),
            &[scaled, m],
        ),
        None => scaled,
    };
    let attn = b.op(format!("{prefix}.softmax"), OpKind::Softmax, &[masked]);
    let ctx = b.op(format!("{prefix}.ctx"), OpKind::MatMul, &[attn, vh]);
    // [h, t, hd] -> [t, dim].
    let merged = b.op(
        format!("{prefix}.merge.perm"),
        OpKind::Permute(vec![1, 0, 2]),
        &[ctx],
    );
    let flat = b.op(
        format!("{prefix}.merge.reshape"),
        OpKind::Reshape(vec![t, dim]),
        &[merged],
    );
    b.op(format!("{prefix}.o"), OpKind::Linear, &[flat, wo])
}

/// Builds a GELU feed-forward network `Linear → GELU → Linear`.
pub fn gelu_ffn(
    b: &mut GraphBuilder,
    prefix: &str,
    x: NodeId,
    dim: usize,
    hidden: usize,
    seed: u64,
) -> NodeId {
    let w1 = b.parameter(
        format!("{prefix}.fc1.weight"),
        xavier(&[hidden, dim], dim, hidden, seed),
    );
    let b1 = b.parameter(
        format!("{prefix}.fc1.bias"),
        Tensor::<f32>::zeros(&[hidden]),
    );
    let w2 = b.parameter(
        format!("{prefix}.fc2.weight"),
        xavier(&[dim, hidden], hidden, dim, seed + 1),
    );
    let b2 = b.parameter(format!("{prefix}.fc2.bias"), Tensor::<f32>::zeros(&[dim]));
    let h = b.op(format!("{prefix}.fc1"), OpKind::Linear, &[x, w1, b1]);
    let a = b.op(format!("{prefix}.gelu"), OpKind::Gelu, &[h]);
    b.op(format!("{prefix}.fc2"), OpKind::Linear, &[a, w2, b2])
}

/// Builds a SwiGLU feed-forward network
/// `(SiLU(x·W_g) ⊙ (x·W_u)) · W_d` (the Qwen/LLaMA MLP).
pub fn swiglu_ffn(
    b: &mut GraphBuilder,
    prefix: &str,
    x: NodeId,
    dim: usize,
    hidden: usize,
    seed: u64,
) -> NodeId {
    let wg = b.parameter(
        format!("{prefix}.gate.weight"),
        xavier(&[hidden, dim], dim, hidden, seed),
    );
    let wu = b.parameter(
        format!("{prefix}.up.weight"),
        xavier(&[hidden, dim], dim, hidden, seed + 1),
    );
    let wd = b.parameter(
        format!("{prefix}.down.weight"),
        xavier(&[dim, hidden], hidden, dim, seed + 2),
    );
    let gate = b.op(format!("{prefix}.gate"), OpKind::Linear, &[x, wg]);
    let act = b.op(format!("{prefix}.silu"), OpKind::Silu, &[gate]);
    let up = b.op(format!("{prefix}.up"), OpKind::Linear, &[x, wu]);
    let prod = b.op(format!("{prefix}.glu"), OpKind::Mul, &[act, up]);
    b.op(format!("{prefix}.down"), OpKind::Linear, &[prod, wd])
}

/// Encoder-classifier configuration for [`build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
    /// Model width.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub layers: usize,
}

impl TransformerConfig {
    /// Laptop-scale encoder classifier.
    pub fn small() -> Self {
        TransformerConfig {
            vocab: 64,
            seq: 8,
            dim: 24,
            heads: 4,
            layers: 2,
        }
    }
}

/// Builds a pre-norm transformer encoder with a *softmax* output head:
/// token embeddings, `layers` blocks of LayerNorm → unmasked attention →
/// residual → LayerNorm → GELU FFN → residual, a final LayerNorm, and a
/// per-token vocabulary distribution `[seq, vocab]`. Unlike the other
/// bundled language models, the head is bounded — this is the
/// calibration-safe shape the `tao-analysis` linter certifies clean.
pub fn build(cfg: TransformerConfig, seed: u64) -> Model {
    let mut b = GraphBuilder::new(1);
    let ids = b.input(0, "token_ids");
    let mut s = seed * 20_000;
    let mut next = || {
        s += 1;
        s
    };

    let table = b.parameter(
        "encoder.embed.weight",
        xavier(&[cfg.vocab, cfg.dim], cfg.vocab, cfg.dim, next()),
    );
    let mut cur = b.op("encoder.embed", OpKind::Embedding, &[table, ids]);

    let d = AttnDims {
        seq: cfg.seq,
        dim: cfg.dim,
        heads: cfg.heads,
    };
    for l in 0..cfg.layers {
        let p = format!("encoder.layers{l}");
        let norm1 = layer_norm(&mut b, &format!("{p}.ln1"), cur, cfg.dim);
        let attn = self_attention(&mut b, &format!("{p}.attn"), norm1, d, None, next());
        let res1 = b.op(format!("{p}.residual1"), OpKind::Add, &[attn, cur]);
        let norm2 = layer_norm(&mut b, &format!("{p}.ln2"), res1, cfg.dim);
        let ffn = gelu_ffn(&mut b, &format!("{p}.ffn"), norm2, cfg.dim, cfg.dim * 4, next());
        cur = b.op(format!("{p}.residual2"), OpKind::Add, &[ffn, res1]);
    }

    let final_norm = layer_norm(&mut b, "encoder.norm", cur, cfg.dim);
    let head = b.parameter(
        "head.weight",
        xavier(&[cfg.vocab, cfg.dim], cfg.dim, cfg.vocab, next()),
    );
    let scores = b.op("head", OpKind::Linear, &[final_norm, head]);
    let probs = b.op("head.softmax", OpKind::Softmax, &[scores]);

    let graph = b
        .finish(vec![probs])
        .expect("transformer graph is well-formed");
    Model {
        name: "transformer-sim".into(),
        graph,
        logits: probs,
        input_shapes: vec![vec![cfg.seq]],
    }
}

/// Samples a valid token-id input for the model.
pub fn sample_ids(cfg: TransformerConfig, seed: u64) -> Tensor<f32> {
    crate::data::zipf_tokens(cfg.seq, cfg.vocab, seed)
}

/// A `[seq, seq]` upper-triangular causal mask (1 above the diagonal).
pub fn causal_mask_tensor(seq: usize) -> Tensor<f32> {
    let mut m = Tensor::<f32>::zeros(&[seq, seq]);
    for i in 0..seq {
        for j in i + 1..seq {
            m.data_mut()[i * seq + j] = 1.0;
        }
    }
    m
}

/// Adds LayerNorm parameters and the op over the last axis.
pub fn layer_norm(b: &mut GraphBuilder, prefix: &str, x: NodeId, dim: usize) -> NodeId {
    let gamma = b.parameter(format!("{prefix}.gamma"), Tensor::<f32>::ones(&[dim]));
    let beta = b.parameter(format!("{prefix}.beta"), Tensor::<f32>::zeros(&[dim]));
    b.op(
        prefix.to_string(),
        OpKind::LayerNorm { eps: 1e-5 },
        &[x, gamma, beta],
    )
}

/// Adds RMSNorm parameters and the op over the last axis.
pub fn rms_norm(b: &mut GraphBuilder, prefix: &str, x: NodeId, dim: usize) -> NodeId {
    let gamma = b.parameter(format!("{prefix}.gamma"), Tensor::<f32>::ones(&[dim]));
    b.op(
        prefix.to_string(),
        OpKind::RmsNorm { eps: 1e-6 },
        &[x, gamma],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::execute;
    use tao_tensor::KernelConfig;

    #[test]
    fn attention_shapes_hold() {
        let d = AttnDims {
            seq: 6,
            dim: 16,
            heads: 4,
        };
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let out = self_attention(&mut b, "attn", x, d, None, 1);
        let g = b.finish(vec![out]).unwrap();
        let input = Tensor::<f32>::randn(&[6, 16], 2);
        let exec = execute(&g, &[input], &KernelConfig::reference(), None).unwrap();
        assert_eq!(exec.value(out).unwrap().dims(), &[6, 16]);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let d = AttnDims {
            seq: 4,
            dim: 8,
            heads: 2,
        };
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let mask = b.parameter("mask", causal_mask_tensor(4));
        let out = self_attention(&mut b, "attn", x, d, Some(mask), 3);
        let g = b.finish(vec![out]).unwrap();
        // Find the softmax node to inspect attention weights.
        let sm = g
            .nodes()
            .iter()
            .find(|n| n.name == "attn.softmax")
            .unwrap()
            .id;
        let input = Tensor::<f32>::randn(&[4, 8], 4);
        let exec = execute(&g, &[input], &KernelConfig::reference(), None).unwrap();
        let attn = exec.value(sm).unwrap();
        // attn: [heads, 4, 4]; everything above the diagonal must be ~0.
        for h in 0..2 {
            for i in 0..4 {
                for j in i + 1..4 {
                    let w = attn.at(&[h, i, j]).unwrap();
                    assert!(w < 1e-6, "future weight {w} at ({h},{i},{j})");
                }
            }
        }
    }

    #[test]
    fn ffn_variants_execute() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let g1 = gelu_ffn(&mut b, "ffn", x, 8, 16, 5);
        let g2 = swiglu_ffn(&mut b, "glu", g1, 8, 16, 6);
        let ln = layer_norm(&mut b, "ln", g2, 8);
        let rn = rms_norm(&mut b, "rn", ln, 8);
        let g = b.finish(vec![rn]).unwrap();
        let input = Tensor::<f32>::randn(&[3, 8], 7);
        let exec = execute(&g, &[input], &KernelConfig::reference(), None).unwrap();
        assert_eq!(exec.value(rn).unwrap().dims(), &[3, 8]);
        assert!(exec.value(rn).unwrap().all_finite());
    }

    #[test]
    fn encoder_classifier_outputs_distributions() {
        let cfg = TransformerConfig::small();
        let m = build(cfg, 1);
        let ids = sample_ids(cfg, 2);
        let exec = execute(&m.graph, &[ids], &KernelConfig::reference(), None).unwrap();
        let probs = exec.value(m.logits).unwrap();
        assert_eq!(probs.dims(), &[cfg.seq, cfg.vocab]);
        assert!(probs.all_finite());
        // Softmax head: every row sums to ~1 and is nonnegative.
        for t in 0..cfg.seq {
            let mut sum = 0.0f32;
            for j in 0..cfg.vocab {
                let p = probs.at(&[t, j]).unwrap();
                assert!(p >= 0.0);
                sum += p;
            }
            assert!((sum - 1.0).abs() < 1e-4, "row {t} sums to {sum}");
        }
    }

    #[test]
    fn mask_tensor_strictly_upper() {
        let m = causal_mask_tensor(3);
        assert_eq!(m.data(), &[0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
    }
}
