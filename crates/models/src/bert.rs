//! A BERT-style bidirectional encoder classifier (the BERT-large
//! stand-in): token + position embeddings, pre-LN encoder layers with
//! bidirectional multi-head attention and GELU FFNs, and a first-token
//! classification head.

use tao_graph::{GraphBuilder, OpKind};
use tao_tensor::Tensor;

use crate::common::{xavier, Model};
use crate::transformer::{gelu_ffn, layer_norm, self_attention, AttnDims};

/// BERT-style configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BertConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
    /// Model width.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub layers: usize,
    /// Classification classes.
    pub classes: usize,
}

impl BertConfig {
    /// Laptop-scale stand-in for BERT-large.
    pub fn small() -> Self {
        BertConfig {
            vocab: 64,
            seq: 8,
            dim: 32,
            heads: 4,
            layers: 2,
            classes: 14,
        }
    }

    /// Deeper variant for dispute-scaling experiments.
    pub fn deep(layers: usize) -> Self {
        BertConfig {
            layers,
            ..Self::small()
        }
    }
}

/// Builds the model with seeded weights. Input: a `[seq]` tensor of
/// integer-valued token ids.
pub fn build(cfg: BertConfig, seed: u64) -> Model {
    let mut b = GraphBuilder::new(1);
    let ids = b.input(0, "token_ids");
    let mut s = seed * 1_000;
    let mut next = || {
        s += 1;
        s
    };

    // Embeddings: token lookup plus learned positions.
    let table = b.parameter(
        "embeddings.word.weight",
        xavier(&[cfg.vocab, cfg.dim], cfg.vocab, cfg.dim, next()),
    );
    let tok = b.op("embeddings.word", OpKind::Embedding, &[table, ids]);
    let pos = b.parameter(
        "embeddings.position.weight",
        xavier(&[cfg.seq, cfg.dim], cfg.seq, cfg.dim, next()),
    );
    let emb = b.op("embeddings.add", OpKind::Add, &[tok, pos]);
    let mut cur = layer_norm(&mut b, "embeddings.ln", emb, cfg.dim);

    let d = AttnDims {
        seq: cfg.seq,
        dim: cfg.dim,
        heads: cfg.heads,
    };
    for l in 0..cfg.layers {
        let p = format!("encoder.layer{l}");
        let ln1 = layer_norm(&mut b, &format!("{p}.ln1"), cur, cfg.dim);
        let attn = self_attention(&mut b, &format!("{p}.attn"), ln1, d, None, next());
        let res1 = b.op(format!("{p}.residual1"), OpKind::Add, &[attn, cur]);
        let ln2 = layer_norm(&mut b, &format!("{p}.ln2"), res1, cfg.dim);
        let ffn = gelu_ffn(
            &mut b,
            &format!("{p}.ffn"),
            ln2,
            cfg.dim,
            cfg.dim * 4,
            next(),
        );
        cur = b.op(format!("{p}.residual2"), OpKind::Add, &[ffn, res1]);
    }

    // Pool the first ([CLS]) token and classify.
    let cls = b.op(
        "pooler.cls",
        OpKind::Slice {
            axis: 0,
            start: 0,
            end: 1,
        },
        &[cur],
    );
    let pooled_w = b.parameter(
        "pooler.dense.weight",
        xavier(&[cfg.dim, cfg.dim], cfg.dim, cfg.dim, next()),
    );
    let pooled = b.op("pooler.dense", OpKind::Linear, &[cls, pooled_w]);
    let pooled_act = b.op("pooler.tanh", OpKind::Tanh, &[pooled]);
    let wcls = b.parameter(
        "classifier.weight",
        xavier(&[cfg.classes, cfg.dim], cfg.dim, cfg.classes, next()),
    );
    let bcls = b.parameter("classifier.bias", Tensor::<f32>::zeros(&[cfg.classes]));
    let logits = b.op("classifier", OpKind::Linear, &[pooled_act, wcls, bcls]);

    let graph = b.finish(vec![logits]).expect("bert graph is well-formed");
    Model {
        name: "bert-sim".into(),
        graph,
        logits,
        input_shapes: vec![vec![cfg.seq]],
    }
}

/// Samples a valid token-id input for the model.
pub fn sample_ids(cfg: BertConfig, seed: u64) -> Tensor<f32> {
    crate::data::zipf_tokens(cfg.seq, cfg.vocab, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_graph::execute;
    use tao_tensor::KernelConfig;

    #[test]
    fn forward_produces_class_logits() {
        let cfg = BertConfig::small();
        let m = build(cfg, 1);
        let ids = sample_ids(cfg, 2);
        let exec = execute(&m.graph, &[ids], &KernelConfig::reference(), None).unwrap();
        let logits = exec.value(m.logits).unwrap();
        assert_eq!(logits.dims(), &[1, cfg.classes]);
        assert!(logits.all_finite());
    }

    #[test]
    fn graph_contains_expected_op_mix() {
        let m = build(BertConfig::small(), 1);
        let mnems: Vec<&str> = m.graph.nodes().iter().map(|n| n.kind.mnemonic()).collect();
        for needed in [
            "embedding",
            "layer_norm",
            "softmax",
            "gelu",
            "linear",
            "matmul",
            "tanh",
        ] {
            assert!(mnems.contains(&needed), "missing {needed}");
        }
    }

    #[test]
    fn layer_count_scales_graph() {
        let two = build(BertConfig::small(), 1).num_ops();
        let four = build(BertConfig::deep(4), 1).num_ops();
        assert!(four > two + 20);
    }

    #[test]
    fn different_inputs_different_logits() {
        let cfg = BertConfig::small();
        let m = build(cfg, 1);
        let a = execute(
            &m.graph,
            &[sample_ids(cfg, 1)],
            &KernelConfig::reference(),
            None,
        )
        .unwrap()
        .value(m.logits)
        .unwrap()
        .clone();
        let b2 = execute(
            &m.graph,
            &[sample_ids(cfg, 9)],
            &KernelConfig::reference(),
            None,
        )
        .unwrap()
        .value(m.logits)
        .unwrap()
        .clone();
        assert_ne!(a.data(), b2.data());
    }
}
