//! Property-based tests for core tensor invariants.

use proptest::prelude::*;
use tao_tensor::{AccumMode, KernelConfig, Shape, Tensor};

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_f32(dims: Vec<usize>) -> impl Strategy<Value = Tensor<f32>> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-100.0f32..100.0, n)
        .prop_map(move |data| Tensor::from_vec(data, &dims).expect("volume matches"))
}

proptest! {
    #[test]
    fn offset_unravel_roundtrip(dims in small_dims(), salt in 0usize..1000) {
        let shape = Shape::new(&dims);
        let flat = salt % shape.volume();
        let idx = shape.unravel(flat);
        prop_assert_eq!(shape.offset(&idx).unwrap(), flat);
    }

    #[test]
    fn add_commutes(dims in small_dims(), seed in 0u64..1000) {
        let a = Tensor::<f32>::rand_uniform(&dims, -10.0, 10.0, seed);
        let b = Tensor::<f32>::rand_uniform(&dims, -10.0, 10.0, seed + 1);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn transpose_involution(t in small_dims().prop_filter("rank 2", |d| d.len() == 2).prop_flat_map(tensor_f32)) {
        let tt = t.transpose(0, 1).unwrap().transpose(0, 1).unwrap();
        prop_assert_eq!(tt.data(), t.data());
    }

    #[test]
    fn reshape_preserves_data(dims in small_dims(), seed in 0u64..100) {
        let t = Tensor::<f32>::rand_uniform(&dims, -1.0, 1.0, seed);
        let flat = t.reshape(&[t.len()]).unwrap();
        prop_assert_eq!(flat.data(), t.data());
    }

    #[test]
    fn all_accum_orders_within_error_bound(n in 1usize..512, seed in 0u64..50) {
        // Every accumulation order must land within the deterministic
        // gamma_{n-1} * sum|x| worst-case envelope of the f64 reference.
        let t = Tensor::<f32>::rand_uniform(&[n], -100.0, 100.0, seed);
        let reference: f64 = t.data().iter().map(|&x| x as f64).sum();
        let abs_sum: f64 = t.data().iter().map(|&x| (x as f64).abs()).sum();
        let u = 5.960_464_477_539_063e-8; // 2^-24
        let k = (n.saturating_sub(1)) as f64;
        let gamma = (k * u) / (1.0 - k * u);
        let bound = gamma * abs_sum + 1e-30;
        for mode in [AccumMode::Sequential, AccumMode::Pairwise, AccumMode::Blocked(32), AccumMode::Kahan] {
            let cfg = KernelConfig { accum: mode, ..KernelConfig::reference() };
            let got = t.sum_all(&cfg) as f64;
            prop_assert!((got - reference).abs() <= bound + reference.abs() * u,
                "{mode:?}: |{got} - {reference}| > {bound}");
        }
    }

    #[test]
    fn matmul_distributes_over_identity(m in 1usize..6, k in 1usize..6, seed in 0u64..50) {
        let a = Tensor::<f32>::rand_uniform(&[m, k], -5.0, 5.0, seed);
        let i = Tensor::<f32>::eye(k);
        let prod = a.matmul(&i, &KernelConfig::reference()).unwrap();
        prop_assert_eq!(prod.data(), a.data());
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..5, cols in 1usize..16, seed in 0u64..50) {
        let t = Tensor::<f32>::rand_uniform(&[rows, cols], -10.0, 10.0, seed);
        let s = t.softmax_last(&KernelConfig::reference()).unwrap();
        for lane in s.data().chunks(cols) {
            let sum: f32 = lane.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(lane.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn cat_then_slice_recovers(rows_a in 1usize..4, rows_b in 1usize..4, cols in 1usize..4, seed in 0u64..20) {
        let a = Tensor::<f32>::rand_uniform(&[rows_a, cols], -1.0, 1.0, seed);
        let b = Tensor::<f32>::rand_uniform(&[rows_b, cols], -1.0, 1.0, seed + 7);
        let c = Tensor::cat(&[&a, &b], 0).unwrap();
        let a2 = c.slice(0, 0, rows_a).unwrap();
        let b2 = c.slice(0, rows_a, rows_a + rows_b).unwrap();
        prop_assert_eq!(a2.data(), a.data());
        prop_assert_eq!(b2.data(), b.data());
    }

    #[test]
    fn broadcast_matches_manual_loop(rows in 1usize..5, cols in 1usize..5, seed in 0u64..20) {
        let col = Tensor::<f32>::rand_uniform(&[rows, 1], -3.0, 3.0, seed);
        let target = Shape::new(&[rows, cols]);
        let b = col.broadcast_to(&target).unwrap();
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(b.at(&[r, c]).unwrap(), col.at(&[r, 0]).unwrap());
            }
        }
    }

    #[test]
    fn relu_idempotent(dims in small_dims(), seed in 0u64..50) {
        let t = Tensor::<f32>::rand_uniform(&dims, -10.0, 10.0, seed);
        let once = t.relu();
        let twice = once.relu();
        prop_assert_eq!(once.data(), twice.data());
    }
}
