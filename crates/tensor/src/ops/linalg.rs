//! Matrix multiplication, batched matmul and affine (linear) layers.
//!
//! The hot paths route through the packed/blocked GEMM in
//! [`crate::kernel`]; the scalar `*_reference` kernels are the permanent
//! bit-exactness oracles (see `tests/tests/kernel_equiv.rs`).

use crate::accum::KernelConfig;
use crate::element::Element;
use crate::error::TensorError;
use crate::kernel::{
    auto_threads, gemm_into, gemm_packed_into, lhs_pack_applies, par_bands, PackedLhs, PackedRhs,
};
use crate::tensor::Tensor;
use crate::Result;

/// Validated geometry of a (possibly batched, possibly broadcast) matmul.
struct MatmulPlan {
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    a_broadcast: bool,
    b_broadcast: bool,
    out_dims: Vec<usize>,
}

fn matmul_plan<T: Element>(a: &Tensor<T>, b: &Tensor<T>) -> Result<MatmulPlan> {
    if a.rank() < 2 || b.rank() < 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: a.rank().min(b.rank()),
            op: "matmul",
        });
    }
    let (m, ka) = (a.dims()[a.rank() - 2], a.dims()[a.rank() - 1]);
    let (kb, n) = (b.dims()[b.rank() - 2], b.dims()[b.rank() - 1]);
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    let a_batch: usize = a.dims()[..a.rank() - 2].iter().product();
    let b_batch: usize = b.dims()[..b.rank() - 2].iter().product();
    let (batch, batch_dims) = if a.rank() == 2 && b.rank() > 2 {
        (b_batch, b.dims()[..b.rank() - 2].to_vec())
    } else if b.rank() == 2 && a.rank() > 2 {
        (a_batch, a.dims()[..a.rank() - 2].to_vec())
    } else {
        if a.dims()[..a.rank() - 2] != b.dims()[..b.rank() - 2] {
            return Err(TensorError::ShapeMismatch {
                lhs: a.dims().to_vec(),
                rhs: b.dims().to_vec(),
                op: "matmul batch",
            });
        }
        (a_batch, a.dims()[..a.rank() - 2].to_vec())
    };
    let mut out_dims = batch_dims;
    out_dims.push(m);
    out_dims.push(n);
    Ok(MatmulPlan {
        m,
        k: ka,
        n,
        batch,
        a_broadcast: a_batch == 1,
        b_broadcast: b_batch == 1,
        out_dims,
    })
}

impl<T: Element> Tensor<T> {
    /// Matrix product.
    ///
    /// Supports `[m,k] @ [k,n]`, and batched `[..,m,k] @ [..,k,n]` where the
    /// batch dimensions must match exactly or be absent on one side (the
    /// unbatched operand is reused across the batch). Every output element
    /// is a length-`k` dot product evaluated under the accumulation order
    /// and FMA setting of `cfg` — the locus of cross-device rounding drift.
    ///
    /// The implementation is the cache-blocked, register-tiled,
    /// row-band-threaded GEMM of [`crate::kernel`]; it is bit-identical to
    /// [`Tensor::matmul_reference`] for every `cfg` (tested exhaustively in
    /// `tests/tests/kernel_equiv.rs`).
    ///
    /// # Errors
    ///
    /// Returns an error for rank < 2 operands or mismatched inner/batch
    /// dimensions.
    pub fn matmul(&self, other: &Tensor<T>, cfg: &KernelConfig) -> Result<Tensor<T>> {
        self.matmul_with_buf(other, cfg, Vec::new())
    }

    /// [`matmul`](Self::matmul) into a recycled output buffer: the same
    /// blocked GEMM and bit-identical results, but the output tensor
    /// reuses `buf`'s allocation when its capacity suffices.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`matmul`](Self::matmul).
    pub fn matmul_with_buf(
        &self,
        other: &Tensor<T>,
        cfg: &KernelConfig,
        buf: Vec<T>,
    ) -> Result<Tensor<T>> {
        let plan = matmul_plan(self, other)?;
        let MatmulPlan { m, k, n, batch, .. } = plan;
        let mut out = buf;
        out.clear();
        out.resize(batch * m * n, T::ZERO);
        if out.is_empty() {
            return Tensor::from_vec(out, &plan.out_dims);
        }
        let per_batch_flops = (m * k * n) as u64;
        if batch == 1 {
            let rhs = PackedRhs::from_row_major(&other.data()[..k * n], k, n);
            let threads = auto_threads(per_batch_flops);
            if lhs_pack_applies(cfg) {
                let lhs = PackedLhs::from_row_major(&self.data()[..m * k], m, k);
                gemm_packed_into(cfg, &lhs, &rhs, &mut out, threads);
            } else {
                gemm_into(cfg, &self.data()[..m * k], m, &rhs, &mut out, threads);
            }
        } else {
            // Shared-rhs broadcast packs once; otherwise each batch entry
            // packs its own panel set. Batches are fanned out over threads;
            // when the batch is smaller than the worker budget, the
            // leftover workers go to row bands *inside* each entry (both
            // axes are bit-exact at any thread count). For the accum modes
            // where MR-row register blocking reproduces the committed
            // per-row chains (see `lhs_pack_applies`), each batch's lhs is
            // packed once into MR panels and reused across all of that
            // entry's column panels — the attention-shaped B×T GEMM case.
            let pack_lhs = lhs_pack_applies(cfg);
            let shared_rhs = plan
                .b_broadcast
                .then(|| PackedRhs::from_row_major(&other.data()[..k * n], k, n));
            let shared_lhs = (pack_lhs && plan.a_broadcast)
                .then(|| PackedLhs::from_row_major(&self.data()[..m * k], m, k));
            let threads = auto_threads(per_batch_flops.saturating_mul(batch as u64));
            let inner_threads = (threads / batch.max(1)).max(1);
            par_bands(&mut out, m * n, threads, |batch0, band| {
                for (i, out_mat) in band.chunks_mut(m * n).enumerate() {
                    let bi = batch0 + i;
                    let a_off = if plan.a_broadcast { 0 } else { bi * m * k };
                    let packed;
                    let rhs = match &shared_rhs {
                        Some(shared) => shared,
                        None => {
                            let b_off = bi * k * n;
                            packed = PackedRhs::from_row_major(
                                &other.data()[b_off..b_off + k * n],
                                k,
                                n,
                            );
                            &packed
                        }
                    };
                    if pack_lhs {
                        let packed_a;
                        let lhs = match &shared_lhs {
                            Some(shared) => shared,
                            None => {
                                packed_a = PackedLhs::from_row_major(
                                    &self.data()[a_off..a_off + m * k],
                                    m,
                                    k,
                                );
                                &packed_a
                            }
                        };
                        gemm_packed_into(cfg, lhs, rhs, out_mat, inner_threads);
                    } else {
                        gemm_into(
                            cfg,
                            &self.data()[a_off..a_off + m * k],
                            m,
                            rhs,
                            out_mat,
                            inner_threads,
                        );
                    }
                }
            });
        }
        Tensor::from_vec(out, &plan.out_dims)
    }

    /// Scalar-oracle matrix product: the original triple-loop kernel, kept
    /// in-tree as the bit-exactness reference the blocked [`Tensor::matmul`]
    /// is differentially tested against.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Tensor::matmul`].
    pub fn matmul_reference(&self, other: &Tensor<T>, cfg: &KernelConfig) -> Result<Tensor<T>> {
        let plan = matmul_plan(self, other)?;
        let MatmulPlan { m, k, n, batch, .. } = plan;
        let mut out = Vec::with_capacity(batch * m * n);
        // Transpose each rhs batch matrix once so dot products read
        // contiguous memory in the canonical k order.
        let mut bt = vec![T::ZERO; k * n];
        for bi in 0..batch {
            let a_off = if plan.a_broadcast { 0 } else { bi * m * k };
            let b_off = if plan.b_broadcast { 0 } else { bi * k * n };
            let b_mat = &other.data()[b_off..b_off + k * n];
            for kk in 0..k {
                for nn in 0..n {
                    bt[nn * k + kk] = b_mat[kk * n + nn];
                }
            }
            for mm in 0..m {
                let row = &self.data()[a_off + mm * k..a_off + (mm + 1) * k];
                for nn in 0..n {
                    out.push(cfg.dot(row, &bt[nn * k..(nn + 1) * k]));
                }
            }
        }
        Tensor::from_vec(out, &plan.out_dims)
    }

    /// Affine layer `x @ w^T + b` with `x: [.., in]`, `w: [out, in]`,
    /// `b: [out]` (PyTorch `nn.Linear` layout).
    ///
    /// The weight rows are already the columns the dot products consume, so
    /// the blocked GEMM packs them directly without a transpose pass. Bias
    /// is added after the dot with one rounding, exactly as the scalar
    /// oracle does.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched feature dimensions.
    pub fn linear(
        &self,
        weight: &Tensor<T>,
        bias: Option<&Tensor<T>>,
        cfg: &KernelConfig,
    ) -> Result<Tensor<T>> {
        self.linear_with_buf(weight, bias, cfg, Vec::new())
    }

    /// [`linear`](Self::linear) into a recycled output buffer (identical
    /// results; see [`matmul_with_buf`](Self::matmul_with_buf)).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`linear`](Self::linear).
    pub fn linear_with_buf(
        &self,
        weight: &Tensor<T>,
        bias: Option<&Tensor<T>>,
        cfg: &KernelConfig,
        buf: Vec<T>,
    ) -> Result<Tensor<T>> {
        let (rows, in_f, out_f) = self.linear_check(weight, bias)?;
        let rhs = PackedRhs::from_transposed(weight.data(), out_f, in_f);
        let mut out = buf;
        out.clear();
        out.resize(rows * out_f, T::ZERO);
        gemm_into(
            cfg,
            self.data(),
            rows,
            &rhs,
            &mut out,
            auto_threads((rows * in_f * out_f) as u64),
        );
        if let Some(b) = bias {
            for row in out.chunks_mut(out_f) {
                for (v, &bv) in row.iter_mut().zip(b.data()) {
                    *v += bv;
                }
            }
        }
        let mut out_dims = self.dims().to_vec();
        *out_dims.last_mut().expect("checked rank >= 1") = out_f;
        Tensor::from_vec(out, &out_dims)
    }

    /// Scalar-oracle affine layer (see [`Tensor::matmul_reference`]).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Tensor::linear`].
    pub fn linear_reference(
        &self,
        weight: &Tensor<T>,
        bias: Option<&Tensor<T>>,
        cfg: &KernelConfig,
    ) -> Result<Tensor<T>> {
        let (rows, in_f, out_f) = self.linear_check(weight, bias)?;
        let mut out = Vec::with_capacity(rows * out_f);
        for r in 0..rows {
            let x = &self.data()[r * in_f..(r + 1) * in_f];
            for o in 0..out_f {
                let w = &weight.data()[o * in_f..(o + 1) * in_f];
                let mut v = cfg.dot(x, w);
                if let Some(b) = bias {
                    v += b.data()[o];
                }
                out.push(v);
            }
        }
        let mut out_dims = self.dims().to_vec();
        *out_dims.last_mut().expect("checked rank >= 1") = out_f;
        Tensor::from_vec(out, &out_dims)
    }

    /// Shape validation shared by both linear kernels; returns
    /// `(rows, in_features, out_features)`.
    fn linear_check(
        &self,
        weight: &Tensor<T>,
        bias: Option<&Tensor<T>>,
    ) -> Result<(usize, usize, usize)> {
        if weight.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: weight.rank(),
                op: "linear weight",
            });
        }
        let in_f = self.dims()[self
            .rank()
            .checked_sub(1)
            .ok_or(TensorError::RankMismatch {
                expected: 1,
                got: 0,
                op: "linear input",
            })?];
        let (out_f, w_in) = (weight.dims()[0], weight.dims()[1]);
        if w_in != in_f {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: weight.dims().to_vec(),
                op: "linear",
            });
        }
        if let Some(b) = bias {
            if b.dims() != [out_f] {
                return Err(TensorError::ShapeMismatch {
                    lhs: vec![out_f],
                    rhs: b.dims().to_vec(),
                    op: "linear bias",
                });
            }
        }
        Ok((self.len() / in_f.max(1), in_f, out_f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::AccumMode;

    fn cfg() -> KernelConfig {
        KernelConfig::reference()
    }

    #[test]
    fn matmul_2x2_identity() {
        let a = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let i = Tensor::<f32>::eye(2);
        assert_eq!(a.matmul(&i, &cfg()).unwrap().data(), a.data());
        assert_eq!(i.matmul(&a, &cfg()).unwrap().data(), a.data());
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b, &cfg()).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_batched() {
        let a = Tensor::<f32>::arange(12).reshape(&[2, 2, 3]).unwrap();
        let b = Tensor::<f32>::arange(12).reshape(&[2, 3, 2]).unwrap();
        let c = a.matmul(&b, &cfg()).unwrap();
        assert_eq!(c.dims(), &[2, 2, 2]);
        // First batch: [[0,1,2],[3,4,5]] @ [[0,1],[2,3],[4,5]].
        assert_eq!(c.at(&[0, 0, 0]).unwrap(), 10.0);
        assert_eq!(c.at(&[0, 1, 1]).unwrap(), 40.0);
    }

    #[test]
    fn matmul_broadcast_unbatched_rhs() {
        let a = Tensor::<f32>::arange(12).reshape(&[2, 2, 3]).unwrap();
        let w = Tensor::<f32>::eye(3);
        let c = a.matmul(&w, &cfg()).unwrap();
        assert_eq!(c.dims(), &[2, 2, 3]);
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_broadcast_unbatched_lhs() {
        let a = Tensor::<f32>::eye(3);
        let b = Tensor::<f32>::arange(18).reshape(&[2, 3, 3]).unwrap();
        let c = a.matmul(&b, &cfg()).unwrap();
        assert_eq!(c.dims(), &[2, 3, 3]);
        assert_eq!(c.data(), b.data());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::<f32>::zeros(&[2, 3]);
        let b = Tensor::<f32>::zeros(&[2, 2]);
        assert!(a.matmul(&b, &cfg()).is_err());
        let v = Tensor::<f32>::zeros(&[3]);
        assert!(v.matmul(&a, &cfg()).is_err());
    }

    #[test]
    fn blocked_matmul_bits_match_reference_oracle() {
        for accum in [
            AccumMode::Sequential,
            AccumMode::Pairwise,
            AccumMode::Blocked(32),
            AccumMode::Kahan,
        ] {
            for fma in [false, true] {
                let c = KernelConfig {
                    accum,
                    fma,
                    ..cfg()
                };
                let a = Tensor::<f32>::rand_uniform(&[9, 77], -50.0, 50.0, 3);
                let b = Tensor::<f32>::rand_uniform(&[77, 13], -50.0, 50.0, 4);
                let fast = a.matmul(&b, &c).unwrap();
                let slow = a.matmul_reference(&b, &c).unwrap();
                let same = fast
                    .data()
                    .iter()
                    .zip(slow.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "{c:?}");
            }
        }
    }

    #[test]
    fn linear_matches_manual() {
        let x = Tensor::<f32>::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let w = Tensor::<f32>::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![0.5, -0.5, 0.0], &[3]).unwrap();
        let y = x.linear(&w, Some(&b), &cfg()).unwrap();
        assert_eq!(y.dims(), &[1, 3]);
        assert_eq!(y.data(), &[1.5, 1.5, 3.0]);
    }

    #[test]
    fn linear_no_bias() {
        let x = Tensor::<f32>::ones(&[2, 2]);
        let w = Tensor::<f32>::eye(2);
        let y = x.linear(&w, None, &cfg()).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn linear_batched_input() {
        let x = Tensor::<f32>::arange(12).reshape(&[2, 3, 2]).unwrap();
        let w = Tensor::<f32>::eye(2);
        let y = x.linear(&w, None, &cfg()).unwrap();
        assert_eq!(y.dims(), &[2, 3, 2]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn linear_rejects_mismatch() {
        let x = Tensor::<f32>::zeros(&[1, 3]);
        let w = Tensor::<f32>::zeros(&[2, 2]);
        assert!(x.linear(&w, None, &cfg()).is_err());
        let w_ok = Tensor::<f32>::zeros(&[2, 3]);
        let bad_bias = Tensor::<f32>::zeros(&[3]);
        assert!(x.linear(&w_ok, Some(&bad_bias), &cfg()).is_err());
    }

    #[test]
    fn linear_bits_match_reference_oracle() {
        let x = Tensor::<f32>::rand_uniform(&[5, 33], -10.0, 10.0, 7);
        let w = Tensor::<f32>::rand_uniform(&[21, 33], -1.0, 1.0, 8);
        let b = Tensor::<f32>::rand_uniform(&[21], -1.0, 1.0, 9);
        for accum in [AccumMode::Sequential, AccumMode::Blocked(8)] {
            let c = KernelConfig {
                accum,
                fma: true,
                ..cfg()
            };
            let fast = x.linear(&w, Some(&b), &c).unwrap();
            let slow = x.linear_reference(&w, Some(&b), &c).unwrap();
            let same = fast
                .data()
                .iter()
                .zip(slow.data())
                .all(|(p, q)| p.to_bits() == q.to_bits());
            assert!(same, "{c:?}");
        }
    }

    #[test]
    fn accumulation_order_visible_in_matmul() {
        let a = Tensor::<f32>::rand_uniform(&[8, 512], -100.0, 100.0, 1);
        let b = Tensor::<f32>::rand_uniform(&[512, 8], -100.0, 100.0, 2);
        let seq = a
            .matmul(
                &b,
                &KernelConfig {
                    accum: AccumMode::Sequential,
                    ..cfg()
                },
            )
            .unwrap();
        let blk = a
            .matmul(
                &b,
                &KernelConfig {
                    accum: AccumMode::Blocked(32),
                    ..cfg()
                },
            )
            .unwrap();
        assert_ne!(seq.data(), blk.data());
        // Differences stay tiny relative to magnitudes.
        for (s, p) in seq.data().iter().zip(blk.data()) {
            assert!(((s - p) / s.abs().max(1.0)).abs() < 1e-4);
        }
    }
}
