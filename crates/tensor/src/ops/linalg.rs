//! Matrix multiplication, batched matmul and affine (linear) layers.

use crate::accum::KernelConfig;
use crate::element::Element;
use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

impl<T: Element> Tensor<T> {
    /// Matrix product.
    ///
    /// Supports `[m,k] @ [k,n]`, and batched `[..,m,k] @ [..,k,n]` where the
    /// batch dimensions must match exactly or be absent on one side (the
    /// unbatched operand is reused across the batch). Every output element
    /// is a length-`k` dot product evaluated under the accumulation order
    /// and FMA setting of `cfg` — the locus of cross-device rounding drift.
    ///
    /// # Errors
    ///
    /// Returns an error for rank < 2 operands or mismatched inner/batch
    /// dimensions.
    pub fn matmul(&self, other: &Tensor<T>, cfg: &KernelConfig) -> Result<Tensor<T>> {
        if self.rank() < 2 || other.rank() < 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: self.rank().min(other.rank()),
                op: "matmul",
            });
        }
        let (m, ka) = (self.dims()[self.rank() - 2], self.dims()[self.rank() - 1]);
        let (kb, n) = (
            other.dims()[other.rank() - 2],
            other.dims()[other.rank() - 1],
        );
        if ka != kb {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "matmul",
            });
        }
        let a_batch: usize = self.dims()[..self.rank() - 2].iter().product();
        let b_batch: usize = other.dims()[..other.rank() - 2].iter().product();
        let (batch, batch_dims) = if self.rank() == 2 && other.rank() > 2 {
            (b_batch, other.dims()[..other.rank() - 2].to_vec())
        } else if other.rank() == 2 && self.rank() > 2 {
            (a_batch, self.dims()[..self.rank() - 2].to_vec())
        } else {
            if self.dims()[..self.rank() - 2] != other.dims()[..other.rank() - 2] {
                return Err(TensorError::ShapeMismatch {
                    lhs: self.dims().to_vec(),
                    rhs: other.dims().to_vec(),
                    op: "matmul batch",
                });
            }
            (a_batch, self.dims()[..self.rank() - 2].to_vec())
        };
        let k = ka;
        let mut out = Vec::with_capacity(batch * m * n);
        // Transpose each rhs batch matrix once so dot products read
        // contiguous memory in the canonical k order.
        let mut bt = vec![T::ZERO; k * n];
        let mut row = vec![T::ZERO; k];
        for bi in 0..batch {
            let a_off = if a_batch == 1 { 0 } else { bi * m * k };
            let b_off = if b_batch == 1 { 0 } else { bi * k * n };
            let b_mat = &other.data()[b_off..b_off + k * n];
            for kk in 0..k {
                for nn in 0..n {
                    bt[nn * k + kk] = b_mat[kk * n + nn];
                }
            }
            for mm in 0..m {
                row.copy_from_slice(&self.data()[a_off + mm * k..a_off + (mm + 1) * k]);
                for nn in 0..n {
                    out.push(cfg.dot(&row, &bt[nn * k..(nn + 1) * k]));
                }
            }
        }
        let mut out_dims = batch_dims;
        out_dims.push(m);
        out_dims.push(n);
        Tensor::from_vec(out, &out_dims)
    }

    /// Affine layer `x @ w^T + b` with `x: [.., in]`, `w: [out, in]`,
    /// `b: [out]` (PyTorch `nn.Linear` layout).
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched feature dimensions.
    pub fn linear(
        &self,
        weight: &Tensor<T>,
        bias: Option<&Tensor<T>>,
        cfg: &KernelConfig,
    ) -> Result<Tensor<T>> {
        if weight.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: weight.rank(),
                op: "linear weight",
            });
        }
        let in_f = self.dims()[self
            .rank()
            .checked_sub(1)
            .ok_or(TensorError::RankMismatch {
                expected: 1,
                got: 0,
                op: "linear input",
            })?];
        let (out_f, w_in) = (weight.dims()[0], weight.dims()[1]);
        if w_in != in_f {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: weight.dims().to_vec(),
                op: "linear",
            });
        }
        if let Some(b) = bias {
            if b.dims() != [out_f] {
                return Err(TensorError::ShapeMismatch {
                    lhs: vec![out_f],
                    rhs: b.dims().to_vec(),
                    op: "linear bias",
                });
            }
        }
        let rows = self.len() / in_f;
        let mut out = Vec::with_capacity(rows * out_f);
        for r in 0..rows {
            let x = &self.data()[r * in_f..(r + 1) * in_f];
            for o in 0..out_f {
                let w = &weight.data()[o * in_f..(o + 1) * in_f];
                let mut v = cfg.dot(x, w);
                if let Some(b) = bias {
                    v += b.data()[o];
                }
                out.push(v);
            }
        }
        let mut out_dims = self.dims().to_vec();
        *out_dims.last_mut().expect("checked rank >= 1") = out_f;
        Tensor::from_vec(out, &out_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::AccumMode;

    fn cfg() -> KernelConfig {
        KernelConfig::reference()
    }

    #[test]
    fn matmul_2x2_identity() {
        let a = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let i = Tensor::<f32>::eye(2);
        assert_eq!(a.matmul(&i, &cfg()).unwrap().data(), a.data());
        assert_eq!(i.matmul(&a, &cfg()).unwrap().data(), a.data());
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b, &cfg()).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_batched() {
        let a = Tensor::<f32>::arange(12).reshape(&[2, 2, 3]).unwrap();
        let b = Tensor::<f32>::arange(12).reshape(&[2, 3, 2]).unwrap();
        let c = a.matmul(&b, &cfg()).unwrap();
        assert_eq!(c.dims(), &[2, 2, 2]);
        // First batch: [[0,1,2],[3,4,5]] @ [[0,1],[2,3],[4,5]].
        assert_eq!(c.at(&[0, 0, 0]).unwrap(), 10.0);
        assert_eq!(c.at(&[0, 1, 1]).unwrap(), 40.0);
    }

    #[test]
    fn matmul_broadcast_unbatched_rhs() {
        let a = Tensor::<f32>::arange(12).reshape(&[2, 2, 3]).unwrap();
        let w = Tensor::<f32>::eye(3);
        let c = a.matmul(&w, &cfg()).unwrap();
        assert_eq!(c.dims(), &[2, 2, 3]);
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::<f32>::zeros(&[2, 3]);
        let b = Tensor::<f32>::zeros(&[2, 2]);
        assert!(a.matmul(&b, &cfg()).is_err());
        let v = Tensor::<f32>::zeros(&[3]);
        assert!(v.matmul(&a, &cfg()).is_err());
    }

    #[test]
    fn linear_matches_manual() {
        let x = Tensor::<f32>::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let w = Tensor::<f32>::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![0.5, -0.5, 0.0], &[3]).unwrap();
        let y = x.linear(&w, Some(&b), &cfg()).unwrap();
        assert_eq!(y.dims(), &[1, 3]);
        assert_eq!(y.data(), &[1.5, 1.5, 3.0]);
    }

    #[test]
    fn linear_no_bias() {
        let x = Tensor::<f32>::ones(&[2, 2]);
        let w = Tensor::<f32>::eye(2);
        let y = x.linear(&w, None, &cfg()).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn linear_batched_input() {
        let x = Tensor::<f32>::arange(12).reshape(&[2, 3, 2]).unwrap();
        let w = Tensor::<f32>::eye(2);
        let y = x.linear(&w, None, &cfg()).unwrap();
        assert_eq!(y.dims(), &[2, 3, 2]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn linear_rejects_mismatch() {
        let x = Tensor::<f32>::zeros(&[1, 3]);
        let w = Tensor::<f32>::zeros(&[2, 2]);
        assert!(x.linear(&w, None, &cfg()).is_err());
        let w_ok = Tensor::<f32>::zeros(&[2, 3]);
        let bad_bias = Tensor::<f32>::zeros(&[3]);
        assert!(x.linear(&w_ok, Some(&bad_bias), &cfg()).is_err());
    }

    #[test]
    fn accumulation_order_visible_in_matmul() {
        let a = Tensor::<f32>::rand_uniform(&[8, 512], -100.0, 100.0, 1);
        let b = Tensor::<f32>::rand_uniform(&[512, 8], -100.0, 100.0, 2);
        let seq = a
            .matmul(
                &b,
                &KernelConfig {
                    accum: AccumMode::Sequential,
                    ..cfg()
                },
            )
            .unwrap();
        let blk = a
            .matmul(
                &b,
                &KernelConfig {
                    accum: AccumMode::Blocked(32),
                    ..cfg()
                },
            )
            .unwrap();
        assert_ne!(seq.data(), blk.data());
        // Differences stay tiny relative to magnitudes.
        for (s, p) in seq.data().iter().zip(blk.data()) {
            assert!(((s - p) / s.abs().max(1.0)).abs() < 1e-4);
        }
    }
}
