//! Pooling and spatial resampling over NCHW tensors.

use crate::accum::KernelConfig;
use crate::element::Element;
use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

impl<T: Element> Tensor<T> {
    /// Max pooling with a square window and stride.
    ///
    /// # Errors
    ///
    /// Returns an error for non-4D input or windows larger than the input.
    pub fn max_pool2d(&self, kernel: usize, stride: usize) -> Result<Tensor<T>> {
        let (n, c, h, w) = self.nchw("max_pool2d")?;
        if kernel == 0 || stride == 0 || kernel > h || kernel > w {
            return Err(TensorError::InvalidArgument(format!(
                "max_pool2d: kernel {kernel}/stride {stride} invalid for {h}x{w}"
            )));
        }
        let oh = (h - kernel) / stride + 1;
        let ow = (w - kernel) / stride + 1;
        let mut out = Vec::with_capacity(n * c * oh * ow);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut m = self.data()[base + oy * stride * w + ox * stride];
                        for ky in 0..kernel {
                            for kx in 0..kernel {
                                let v =
                                    self.data()[base + (oy * stride + ky) * w + ox * stride + kx];
                                m = m.maximum(v);
                            }
                        }
                        out.push(m);
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, c, oh, ow])
    }

    /// Average pooling with a square window and stride; the window sum uses
    /// `cfg`'s accumulation order.
    ///
    /// # Errors
    ///
    /// Returns an error for non-4D input or windows larger than the input.
    pub fn avg_pool2d(
        &self,
        kernel: usize,
        stride: usize,
        cfg: &KernelConfig,
    ) -> Result<Tensor<T>> {
        let (n, c, h, w) = self.nchw("avg_pool2d")?;
        if kernel == 0 || stride == 0 || kernel > h || kernel > w {
            return Err(TensorError::InvalidArgument(format!(
                "avg_pool2d: kernel {kernel}/stride {stride} invalid for {h}x{w}"
            )));
        }
        let oh = (h - kernel) / stride + 1;
        let ow = (w - kernel) / stride + 1;
        let norm = T::from_f64((kernel * kernel) as f64);
        let mut window = vec![T::ZERO; kernel * kernel];
        let mut out = Vec::with_capacity(n * c * oh * ow);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut p = 0;
                        for ky in 0..kernel {
                            for kx in 0..kernel {
                                window[p] =
                                    self.data()[base + (oy * stride + ky) * w + ox * stride + kx];
                                p += 1;
                            }
                        }
                        out.push(cfg.sum(&window) / norm);
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, c, oh, ow])
    }

    /// Adaptive average pooling to `1x1` (global average per channel).
    ///
    /// # Errors
    ///
    /// Returns an error for non-4D input.
    pub fn adaptive_avg_pool2d_1x1(&self, cfg: &KernelConfig) -> Result<Tensor<T>> {
        let (n, c, h, w) = self.nchw("adaptive_avg_pool2d")?;
        let hw = h * w;
        let norm = T::from_f64(hw as f64);
        let mut out = Vec::with_capacity(n * c);
        for chan in self.data().chunks(hw) {
            out.push(cfg.sum(chan) / norm);
        }
        let _ = (n, c);
        Tensor::from_vec(out, &[self.dims()[0], self.dims()[1], 1, 1])
    }

    /// Nearest-neighbour upsampling by an integer factor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-4D input or a zero factor.
    pub fn upsample_nearest2x(&self, factor: usize) -> Result<Tensor<T>> {
        let (n, c, h, w) = self.nchw("upsample_nearest")?;
        if factor == 0 {
            return Err(TensorError::InvalidArgument(
                "upsample factor must be > 0".into(),
            ));
        }
        let (oh, ow) = (h * factor, w * factor);
        let mut out = Vec::with_capacity(n * c * oh * ow);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        out.push(self.data()[base + (oy / factor) * w + ox / factor]);
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, c, oh, ow])
    }

    fn nchw(&self, op: &'static str) -> Result<(usize, usize, usize, usize)> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                got: self.rank(),
                op,
            });
        }
        Ok((
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> KernelConfig {
        KernelConfig::reference()
    }

    #[test]
    fn max_pool_picks_window_max() {
        let x = Tensor::<f32>::arange(16).reshape(&[1, 1, 4, 4]).unwrap();
        let y = x.max_pool2d(2, 2).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn max_pool_overlapping_stride() {
        let x = Tensor::<f32>::arange(9).reshape(&[1, 1, 3, 3]).unwrap();
        let y = x.max_pool2d(2, 1).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn avg_pool_window_means() {
        let x = Tensor::<f32>::arange(16).reshape(&[1, 1, 4, 4]).unwrap();
        let y = x.avg_pool2d(2, 2, &cfg()).unwrap();
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn global_average_pool() {
        let x = Tensor::<f32>::arange(8).reshape(&[1, 2, 2, 2]).unwrap();
        let y = x.adaptive_avg_pool2d_1x1(&cfg()).unwrap();
        assert_eq!(y.dims(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[1.5, 5.5]);
    }

    #[test]
    fn upsample_doubles_pixels() {
        let x = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = x.upsample_nearest2x(2).unwrap();
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        assert_eq!(
            y.data(),
            &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 3.0, 3.0, 4.0, 4.0]
        );
    }

    #[test]
    fn pooling_shape_errors() {
        let x = Tensor::<f32>::zeros(&[4, 4]);
        assert!(x.max_pool2d(2, 2).is_err());
        let y = Tensor::<f32>::zeros(&[1, 1, 2, 2]);
        assert!(y.max_pool2d(3, 1).is_err());
        assert!(y.avg_pool2d(0, 1, &cfg()).is_err());
        assert!(y.upsample_nearest2x(0).is_err());
    }
}
