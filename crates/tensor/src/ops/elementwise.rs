//! Elementwise binary and unary arithmetic with broadcasting.

use crate::element::Element;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Applies a binary function elementwise with NumPy-style broadcasting.
///
/// # Errors
///
/// Returns an error when the shapes are not broadcast-compatible.
pub fn zip_broadcast<T: Element>(
    a: &Tensor<T>,
    b: &Tensor<T>,
    f: impl Fn(T, T) -> T,
) -> Result<Tensor<T>> {
    zip_broadcast_with_buf(a, b, Vec::new(), f)
}

/// [`zip_broadcast`] into a recycled output buffer: identical result, but
/// the output reuses `buf`'s allocation when its capacity suffices.
pub fn zip_broadcast_with_buf<T: Element>(
    a: &Tensor<T>,
    b: &Tensor<T>,
    mut buf: Vec<T>,
    f: impl Fn(T, T) -> T,
) -> Result<Tensor<T>> {
    let out_shape: Shape = a.shape().broadcast(b.shape())?;
    buf.clear();
    if a.shape() == &out_shape && b.shape() == &out_shape {
        // Fast path: identical shapes need no index arithmetic.
        buf.extend(a.data().iter().zip(b.data()).map(|(&x, &y)| f(x, y)));
        return Tensor::from_vec(buf, out_shape.dims());
    }
    let ab = a.broadcast_to(&out_shape)?;
    let bb = b.broadcast_to(&out_shape)?;
    buf.extend(ab.data().iter().zip(bb.data()).map(|(&x, &y)| f(x, y)));
    Tensor::from_vec(buf, out_shape.dims())
}

impl<T: Element> Tensor<T> {
    /// Elementwise addition with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes are not broadcast-compatible.
    pub fn add(&self, other: &Tensor<T>) -> Result<Tensor<T>> {
        self.add_with_buf(other, Vec::new())
    }

    /// [`add`](Self::add) into a recycled buffer (identical result).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`add`](Self::add).
    pub fn add_with_buf(&self, other: &Tensor<T>, buf: Vec<T>) -> Result<Tensor<T>> {
        zip_broadcast_with_buf(self, other, buf, |x, y| x + y)
    }

    /// Elementwise subtraction with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes are not broadcast-compatible.
    pub fn sub(&self, other: &Tensor<T>) -> Result<Tensor<T>> {
        self.sub_with_buf(other, Vec::new())
    }

    /// [`sub`](Self::sub) into a recycled buffer (identical result).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`sub`](Self::sub).
    pub fn sub_with_buf(&self, other: &Tensor<T>, buf: Vec<T>) -> Result<Tensor<T>> {
        zip_broadcast_with_buf(self, other, buf, |x, y| x - y)
    }

    /// Elementwise multiplication with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes are not broadcast-compatible.
    pub fn mul(&self, other: &Tensor<T>) -> Result<Tensor<T>> {
        self.mul_with_buf(other, Vec::new())
    }

    /// [`mul`](Self::mul) into a recycled buffer (identical result).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`mul`](Self::mul).
    pub fn mul_with_buf(&self, other: &Tensor<T>, buf: Vec<T>) -> Result<Tensor<T>> {
        zip_broadcast_with_buf(self, other, buf, |x, y| x * y)
    }

    /// Elementwise division with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes are not broadcast-compatible.
    pub fn div(&self, other: &Tensor<T>) -> Result<Tensor<T>> {
        self.div_with_buf(other, Vec::new())
    }

    /// [`div`](Self::div) into a recycled buffer (identical result).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`div`](Self::div).
    pub fn div_with_buf(&self, other: &Tensor<T>, buf: Vec<T>) -> Result<Tensor<T>> {
        zip_broadcast_with_buf(self, other, buf, |x, y| x / y)
    }

    /// Elementwise maximum with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes are not broadcast-compatible.
    pub fn maximum(&self, other: &Tensor<T>) -> Result<Tensor<T>> {
        zip_broadcast(self, other, |x, y| x.maximum(y))
    }

    /// Elementwise minimum with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes are not broadcast-compatible.
    pub fn minimum(&self, other: &Tensor<T>) -> Result<Tensor<T>> {
        zip_broadcast(self, other, |x, y| x.minimum(y))
    }

    /// Negation.
    pub fn neg(&self) -> Tensor<T> {
        self.map(|x| -x)
    }

    /// [`neg`](Self::neg) into a recycled buffer (identical result).
    pub fn neg_with_buf(&self, buf: Vec<T>) -> Tensor<T> {
        self.map_with_buf(buf, |x| -x)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor<T> {
        self.map(|x| x.abs())
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: T) -> Tensor<T> {
        self.map(|x| x + s)
    }

    /// [`add_scalar`](Self::add_scalar) into a recycled buffer.
    pub fn add_scalar_with_buf(&self, s: T, buf: Vec<T>) -> Tensor<T> {
        self.map_with_buf(buf, |x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: T) -> Tensor<T> {
        self.map(|x| x * s)
    }

    /// [`mul_scalar`](Self::mul_scalar) into a recycled buffer.
    pub fn mul_scalar_with_buf(&self, s: T, buf: Vec<T>) -> Tensor<T> {
        self.map_with_buf(buf, |x| x * s)
    }

    /// Raises every element to a scalar power.
    pub fn pow_scalar(&self, p: T) -> Tensor<T> {
        self.map(|x| x.powf(p))
    }

    /// Elementwise power with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes are not broadcast-compatible.
    pub fn pow(&self, other: &Tensor<T>) -> Result<Tensor<T>> {
        zip_broadcast(self, other, |x, y| x.powf(y))
    }

    /// Fills elements where `mask != 0` with `value` (masked fill).
    ///
    /// # Errors
    ///
    /// Returns an error when the mask shape is not broadcastable to `self`.
    pub fn masked_fill(&self, mask: &Tensor<T>, value: T) -> Result<Tensor<T>> {
        let m = mask.broadcast_to(self.shape())?;
        let data = self
            .data()
            .iter()
            .zip(m.data())
            .map(|(&x, &b)| if b != T::ZERO { value } else { x })
            .collect();
        Tensor::from_vec(data, self.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_shape() {
        let a = Tensor::<f32>::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0]);
    }

    #[test]
    fn add_broadcast_row() {
        let a = Tensor::<f32>::arange(6).reshape(&[2, 3]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap();
        let c = a.add(&b).unwrap();
        assert_eq!(c.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn sub_mul_div() {
        let a = Tensor::<f32>::from_vec(vec![6.0, 8.0], &[2]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        assert_eq!(a.sub(&b).unwrap().data(), &[4.0, 4.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[12.0, 32.0]);
        assert_eq!(a.div(&b).unwrap().data(), &[3.0, 2.0]);
    }

    #[test]
    fn incompatible_shapes_error() {
        let a = Tensor::<f32>::zeros(&[2, 3]);
        let b = Tensor::<f32>::zeros(&[2, 2]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn scalar_ops() {
        let a = Tensor::<f32>::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0]);
        assert_eq!(a.mul_scalar(3.0).data(), &[3.0, -6.0]);
        assert_eq!(a.neg().data(), &[-1.0, 2.0]);
        assert_eq!(a.abs().data(), &[1.0, 2.0]);
    }

    #[test]
    fn pow_scalar_squares() {
        let a = Tensor::<f32>::from_vec(vec![2.0, 3.0], &[2]).unwrap();
        assert_eq!(a.pow_scalar(2.0).data(), &[4.0, 9.0]);
    }

    #[test]
    fn max_min_elementwise() {
        let a = Tensor::<f32>::from_vec(vec![1.0, 5.0], &[2]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![3.0, 2.0], &[2]).unwrap();
        assert_eq!(a.maximum(&b).unwrap().data(), &[3.0, 5.0]);
        assert_eq!(a.minimum(&b).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn masked_fill_replaces() {
        let a = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let m = Tensor::<f32>::from_vec(vec![0.0, 1.0, 0.0], &[3]).unwrap();
        let f = a.masked_fill(&m, -9.0).unwrap();
        assert_eq!(f.data(), &[1.0, -9.0, 3.0]);
    }

    #[test]
    fn broadcast_column_times_row() {
        let col = Tensor::<f32>::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        let row = Tensor::<f32>::from_vec(vec![3.0, 4.0, 5.0], &[1, 3]).unwrap();
        let prod = col.mul(&row).unwrap();
        assert_eq!(prod.dims(), &[2, 3]);
        assert_eq!(prod.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }
}
