//! Embedding lookup (pure data movement, no floating-point error).

use crate::element::Element;
use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

impl<T: Element> Tensor<T> {
    /// Embedding lookup: `self` is a `[vocab, dim]` table; `ids` selects
    /// rows, producing `[ids.len(), dim]`.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-2D table or out-of-vocabulary ids.
    pub fn embedding(&self, ids: &[usize]) -> Result<Tensor<T>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: self.rank(),
                op: "embedding",
            });
        }
        self.index_select0(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_rows() {
        let table = Tensor::<f32>::arange(8).reshape(&[4, 2]).unwrap();
        let e = table.embedding(&[3, 0, 3]).unwrap();
        assert_eq!(e.dims(), &[3, 2]);
        assert_eq!(e.data(), &[6.0, 7.0, 0.0, 1.0, 6.0, 7.0]);
    }

    #[test]
    fn out_of_vocab_errors() {
        let table = Tensor::<f32>::zeros(&[4, 2]);
        assert!(table.embedding(&[4]).is_err());
    }

    #[test]
    fn non_2d_table_errors() {
        let table = Tensor::<f32>::zeros(&[4]);
        assert!(table.embedding(&[0]).is_err());
    }
}
