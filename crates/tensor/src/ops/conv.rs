//! 2-D convolution over NCHW tensors.
//!
//! The hot path lowers each image to an im2col operand packed directly
//! into the blocked-GEMM panel layout of [`crate::kernel`] and reuses the
//! register-tiled matmul core; [`Tensor::conv2d_reference`] keeps the
//! original gather-per-output scalar loop as the bit-exactness oracle.

use crate::accum::KernelConfig;
use crate::element::Element;
use crate::error::TensorError;
use crate::kernel::{auto_threads, gemm_into, par_bands, PackedRhs};
use crate::tensor::Tensor;
use crate::Result;

/// Convolution hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dParams {
    /// Stride along height and width.
    pub stride: usize,
    /// Zero padding along height and width.
    pub padding: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dParams {
    /// Output spatial extent for an input extent and kernel extent.
    pub fn out_extent(&self, input: usize, kernel: usize) -> Option<usize> {
        (input + 2 * self.padding)
            .checked_sub(kernel)
            .map(|v| v / self.stride + 1)
    }
}

impl<T: Element> Tensor<T> {
    /// 2-D convolution: `self: [n, c_in, h, w]`, `weight: [c_out, c_in, kh, kw]`,
    /// optional `bias: [c_out]`.
    ///
    /// Each output element is a length-`c_in*kh*kw` dot product gathered in
    /// canonical (channel, row, column) order and evaluated under `cfg`'s
    /// accumulation order — the same reduction-order degree of freedom GPU
    /// convolution kernels exercise.
    ///
    /// # Errors
    ///
    /// Returns an error for non-4D operands, channel mismatches, or kernels
    /// larger than the padded input.
    pub fn conv2d(
        &self,
        weight: &Tensor<T>,
        bias: Option<&Tensor<T>>,
        params: Conv2dParams,
        cfg: &KernelConfig,
    ) -> Result<Tensor<T>> {
        self.conv2d_with_buf(weight, bias, params, cfg, Vec::new())
    }

    /// [`conv2d`](Self::conv2d) into a recycled output buffer: the same
    /// im2col-backed GEMM and bit-identical results, but the output tensor
    /// reuses `buf`'s allocation when its capacity suffices.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`conv2d`](Self::conv2d).
    pub fn conv2d_with_buf(
        &self,
        weight: &Tensor<T>,
        bias: Option<&Tensor<T>>,
        params: Conv2dParams,
        cfg: &KernelConfig,
        buf: Vec<T>,
    ) -> Result<Tensor<T>> {
        let geo = self.conv2d_check(weight, bias, params)?;
        let ConvGeometry {
            n,
            c_in,
            h,
            w,
            c_out,
            kh,
            kw,
            oh,
            ow,
            patch,
        } = geo;
        let ohow = oh * ow;
        let mut out = buf;
        out.clear();
        out.resize(n * c_out * ohow, T::ZERO);
        if out.is_empty() {
            return Tensor::from_vec(out, &[n, c_out, oh, ow]);
        }
        let pad = params.padding as isize;
        // Images fan out over workers; leftover workers go to row bands
        // inside each image's GEMM (both axes are bit-exact at any thread
        // count, mirroring the batched-matmul split).
        let threads = auto_threads((n * c_out * ohow * patch) as u64);
        let inner_threads = (threads / n.max(1)).max(1);
        par_bands(&mut out, c_out * ohow, threads, |img0, band| {
            for (i, image) in band.chunks_mut(c_out * ohow).enumerate() {
                let ni = img0 + i;
                // im2col: receptive fields gathered in canonical (channel,
                // row, column) order — the same element sequence the
                // oracle's inner gather produces — packed straight into
                // GEMM panels.
                let rhs = PackedRhs::pack_with(patch, ohow, |kk, col| {
                    let ic = kk / (kh * kw);
                    let rest = kk % (kh * kw);
                    let (ky, kx) = (rest / kw, rest % kw);
                    let (oy, ox) = (col / ow, col % ow);
                    let iy = (oy * params.stride + ky) as isize - pad;
                    let ix = (ox * params.stride + kx) as isize - pad;
                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                        T::ZERO
                    } else {
                        self.data()[((ni * c_in + ic) * h + iy as usize) * w + ix as usize]
                    }
                });
                gemm_into(cfg, weight.data(), c_out, &rhs, image, inner_threads);
                if let Some(b) = bias {
                    for (oc, row) in image.chunks_mut(ohow).enumerate() {
                        let bv = b.data()[oc];
                        for v in row {
                            *v += bv;
                        }
                    }
                }
            }
        });
        Tensor::from_vec(out, &[n, c_out, oh, ow])
    }

    /// Scalar-oracle 2-D convolution: the original gather-per-output
    /// triple loop, kept in-tree as the bit-exactness reference the
    /// im2col-backed [`Tensor::conv2d`] is differentially tested against.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Tensor::conv2d`].
    pub fn conv2d_reference(
        &self,
        weight: &Tensor<T>,
        bias: Option<&Tensor<T>>,
        params: Conv2dParams,
        cfg: &KernelConfig,
    ) -> Result<Tensor<T>> {
        let geo = self.conv2d_check(weight, bias, params)?;
        let ConvGeometry {
            n,
            c_in,
            h,
            w,
            c_out,
            kh,
            kw,
            oh,
            ow,
            patch,
        } = geo;
        let mut col = vec![T::ZERO; patch];
        let mut out = Vec::with_capacity(n * c_out * oh * ow);
        let pad = params.padding as isize;
        for ni in 0..n {
            for oc in 0..c_out {
                let wrow = &weight.data()[oc * patch..(oc + 1) * patch];
                for oy in 0..oh {
                    for ox in 0..ow {
                        // Gather the receptive field in canonical order,
                        // substituting zeros for padding.
                        let mut p = 0;
                        for ic in 0..c_in {
                            for ky in 0..kh {
                                let iy = (oy * params.stride + ky) as isize - pad;
                                for kx in 0..kw {
                                    let ix = (ox * params.stride + kx) as isize - pad;
                                    col[p] =
                                        if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize
                                        {
                                            T::ZERO
                                        } else {
                                            self.data()[((ni * c_in + ic) * h + iy as usize) * w
                                                + ix as usize]
                                        };
                                    p += 1;
                                }
                            }
                        }
                        let mut v = cfg.dot(&col, wrow);
                        if let Some(b) = bias {
                            v += b.data()[oc];
                        }
                        out.push(v);
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, c_out, oh, ow])
    }

    /// Shape validation shared by both convolution kernels.
    fn conv2d_check(
        &self,
        weight: &Tensor<T>,
        bias: Option<&Tensor<T>>,
        params: Conv2dParams,
    ) -> Result<ConvGeometry> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                got: self.rank(),
                op: "conv2d",
            });
        }
        if weight.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                got: weight.rank(),
                op: "conv2d weight",
            });
        }
        let (n, c_in, h, w) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        let (c_out, wc_in, kh, kw) = (
            weight.dims()[0],
            weight.dims()[1],
            weight.dims()[2],
            weight.dims()[3],
        );
        if wc_in != c_in {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: weight.dims().to_vec(),
                op: "conv2d channels",
            });
        }
        if let Some(b) = bias {
            if b.dims() != [c_out] {
                return Err(TensorError::ShapeMismatch {
                    lhs: vec![c_out],
                    rhs: b.dims().to_vec(),
                    op: "conv2d bias",
                });
            }
        }
        let oh = params.out_extent(h, kh).ok_or_else(|| {
            TensorError::InvalidArgument("conv2d: kernel taller than input".into())
        })?;
        let ow = params.out_extent(w, kw).ok_or_else(|| {
            TensorError::InvalidArgument("conv2d: kernel wider than input".into())
        })?;
        Ok(ConvGeometry {
            n,
            c_in,
            h,
            w,
            c_out,
            kh,
            kw,
            oh,
            ow,
            patch: c_in * kh * kw,
        })
    }
}

/// Validated shape data shared by the blocked and oracle convolutions.
struct ConvGeometry {
    n: usize,
    c_in: usize,
    h: usize,
    w: usize,
    c_out: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    patch: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> KernelConfig {
        KernelConfig::reference()
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let x = Tensor::<f32>::arange(16).reshape(&[1, 1, 4, 4]).unwrap();
        let w = Tensor::<f32>::ones(&[1, 1, 1, 1]);
        let y = x.conv2d(&w, None, Conv2dParams::default(), &cfg()).unwrap();
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn box_filter_3x3() {
        let x = Tensor::<f32>::ones(&[1, 1, 3, 3]);
        let w = Tensor::<f32>::ones(&[1, 1, 3, 3]);
        let y = x.conv2d(&w, None, Conv2dParams::default(), &cfg()).unwrap();
        assert_eq!(y.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[9.0]);
    }

    #[test]
    fn padding_same_spatial_size() {
        let x = Tensor::<f32>::ones(&[1, 1, 4, 4]);
        let w = Tensor::<f32>::ones(&[1, 1, 3, 3]);
        let y = x
            .conv2d(
                &w,
                None,
                Conv2dParams {
                    stride: 1,
                    padding: 1,
                },
                &cfg(),
            )
            .unwrap();
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        // Corner sees a 2x2 window of ones.
        assert_eq!(y.at(&[0, 0, 0, 0]).unwrap(), 4.0);
        // Center sees a full 3x3 window.
        assert_eq!(y.at(&[0, 0, 1, 1]).unwrap(), 9.0);
    }

    #[test]
    fn stride_downsamples() {
        let x = Tensor::<f32>::arange(16).reshape(&[1, 1, 4, 4]).unwrap();
        let w = Tensor::<f32>::ones(&[1, 1, 2, 2]);
        let y = x
            .conv2d(
                &w,
                None,
                Conv2dParams {
                    stride: 2,
                    padding: 0,
                },
                &cfg(),
            )
            .unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[10.0, 18.0, 42.0, 50.0]);
    }

    #[test]
    fn multi_channel_sums_channels() {
        let x = Tensor::<f32>::ones(&[1, 3, 2, 2]);
        let w = Tensor::<f32>::ones(&[2, 3, 2, 2]);
        let b = Tensor::<f32>::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let y = x
            .conv2d(&w, Some(&b), Conv2dParams::default(), &cfg())
            .unwrap();
        assert_eq!(y.dims(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[12.5, 11.5]);
    }

    #[test]
    fn batch_dimension_independent() {
        let x0 = Tensor::<f32>::ones(&[1, 1, 2, 2]);
        let x1 = Tensor::<f32>::full(&[1, 1, 2, 2], 2.0);
        let x = Tensor::cat(&[&x0, &x1], 0).unwrap();
        let w = Tensor::<f32>::ones(&[1, 1, 2, 2]);
        let y = x.conv2d(&w, None, Conv2dParams::default(), &cfg()).unwrap();
        assert_eq!(y.dims(), &[2, 1, 1, 1]);
        assert_eq!(y.data(), &[4.0, 8.0]);
    }

    #[test]
    fn im2col_bits_match_reference_oracle() {
        use crate::accum::AccumMode;
        let x = Tensor::<f32>::rand_uniform(&[2, 3, 7, 6], -2.0, 2.0, 21);
        let w = Tensor::<f32>::rand_uniform(&[4, 3, 3, 3], -0.5, 0.5, 22);
        let b = Tensor::<f32>::rand_uniform(&[4], -0.1, 0.1, 23);
        let params = Conv2dParams {
            stride: 2,
            padding: 1,
        };
        for accum in [
            AccumMode::Sequential,
            AccumMode::Pairwise,
            AccumMode::Blocked(8),
            AccumMode::Kahan,
        ] {
            for fma in [false, true] {
                let c = KernelConfig {
                    accum,
                    fma,
                    ..cfg()
                };
                let fast = x.conv2d(&w, Some(&b), params, &c).unwrap();
                let slow = x.conv2d_reference(&w, Some(&b), params, &c).unwrap();
                assert_eq!(fast.dims(), slow.dims());
                let same = fast
                    .data()
                    .iter()
                    .zip(slow.data())
                    .all(|(p, q)| p.to_bits() == q.to_bits());
                assert!(same, "{c:?}");
            }
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let x = Tensor::<f32>::zeros(&[1, 2, 4, 4]);
        let w = Tensor::<f32>::zeros(&[1, 3, 3, 3]);
        assert!(x.conv2d(&w, None, Conv2dParams::default(), &cfg()).is_err());
        let v = Tensor::<f32>::zeros(&[4, 4]);
        assert!(v.conv2d(&w, None, Conv2dParams::default(), &cfg()).is_err());
        let w_big = Tensor::<f32>::zeros(&[1, 2, 5, 5]);
        assert!(x
            .conv2d(&w_big, None, Conv2dParams::default(), &cfg())
            .is_err());
    }
}
