//! Quantized tensor operators: fake-quant `quantize`/`dequantize` with a
//! static committed scale, and int8 matmul/linear built on the widening
//! GEMM of [`crate::quant`].
//!
//! Every operator here is **`KernelConfig`-independent**: the inner
//! accumulation is exact wrapping `i32` arithmetic, so every accumulation
//! order and FMA setting produces the same bits. A quantized operator is
//! therefore cross-device exact by construction — its calibration
//! envelope is all-zero and any nonzero deviation is an unbounded
//! threshold offense (see `tao-calib`).

use crate::error::TensorError;
use crate::kernel::{auto_threads, PackedRhs};
use crate::quant::{
    dequantize_value, max_abs, quant_gemm_into, quant_gemm_reference, quantize_symmetric,
    quantize_value, symmetric_scale,
};
use crate::tensor::Tensor;
use crate::Result;

/// Rejects non-finite or non-positive static scales up front so a bad
/// scale is a graph-construction error, not a silent NaN factory.
fn check_scale(scale: f64, op: &'static str) -> Result<()> {
    if !scale.is_finite() || scale <= 0.0 {
        return Err(TensorError::InvalidArgument(format!(
            "{op}: scale must be finite and positive, got {scale}"
        )));
    }
    Ok(())
}

/// Validated geometry of a rank-2 quantized matmul.
fn quant_matmul_check(a: &Tensor<f32>, b: &Tensor<f32>) -> Result<(usize, usize, usize)> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            got: if a.rank() != 2 { a.rank() } else { b.rank() },
            op: "quant_matmul",
        });
    }
    let (m, ka) = (a.dims()[0], a.dims()[1]);
    let (kb, n) = (b.dims()[0], b.dims()[1]);
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "quant_matmul",
        });
    }
    Ok((m, ka, n))
}

impl Tensor<f32> {
    /// Fake-quantizes to the symmetric int8 grid with a static scale:
    /// every value becomes `round(x / scale)` clamped to `[-127, 127]`,
    /// stored as an exactly-representable small-integer `f32`.
    ///
    /// The scale is a static operator attribute (committed in the graph
    /// signature), not derived from the data — calibration-time range
    /// estimation happens before graph construction.
    ///
    /// # Errors
    ///
    /// Returns an error if `scale` is not finite and positive.
    pub fn quantize_static(&self, scale: f64) -> Result<Tensor<f32>> {
        self.quantize_static_with_buf(scale, Vec::new())
    }

    /// [`quantize_static`](Self::quantize_static) into a recycled buffer.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`quantize_static`](Self::quantize_static).
    pub fn quantize_static_with_buf(&self, scale: f64, buf: Vec<f32>) -> Result<Tensor<f32>> {
        check_scale(scale, "quantize")?;
        let mut out = buf;
        out.clear();
        out.extend(
            self.data()
                .iter()
                .map(|&x| f32::from(quantize_value(x, scale))),
        );
        Tensor::from_vec(out, self.dims())
    }

    /// Multiplies quantized-grid integers back by their static scale:
    /// `x * scale` in `f64`, rounded once to `f32`.
    ///
    /// # Errors
    ///
    /// Returns an error if `scale` is not finite and positive.
    pub fn dequantize_static(&self, scale: f64) -> Result<Tensor<f32>> {
        self.dequantize_static_with_buf(scale, Vec::new())
    }

    /// [`dequantize_static`](Self::dequantize_static) into a recycled
    /// buffer.
    ///
    /// # Errors
    ///
    /// Same error conditions as
    /// [`dequantize_static`](Self::dequantize_static).
    pub fn dequantize_static_with_buf(&self, scale: f64, buf: Vec<f32>) -> Result<Tensor<f32>> {
        check_scale(scale, "dequantize")?;
        let mut out = buf;
        out.clear();
        out.extend(
            self.data()
                .iter()
                .map(|&x| (f64::from(x) * scale) as f32),
        );
        Tensor::from_vec(out, self.dims())
    }

    /// Int8-quantized rank-2 matrix product with per-tensor symmetric
    /// scales on both operands: quantize, widening `i32` GEMM, then one
    /// dequantizing rounding per output element.
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-2 operands or mismatched inner
    /// dimensions.
    pub fn quant_matmul(&self, other: &Tensor<f32>) -> Result<Tensor<f32>> {
        self.quant_matmul_with_buf(other, Vec::new())
    }

    /// [`quant_matmul`](Self::quant_matmul) into a recycled output buffer
    /// (the `i8`/`i32` intermediates are transient scratch).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`quant_matmul`](Self::quant_matmul).
    pub fn quant_matmul_with_buf(&self, other: &Tensor<f32>, buf: Vec<f32>) -> Result<Tensor<f32>> {
        let (m, k, n) = quant_matmul_check(self, other)?;
        let (qa, sa) = quantize_symmetric(self.data());
        let (qb, sb) = quantize_symmetric(other.data());
        let rhs = PackedRhs::from_row_major(&qb, k, n);
        let mut acc = vec![0i32; m * n];
        quant_gemm_into(&qa, m, &rhs, &mut acc, auto_threads((m * k * n) as u64));
        let scale = sa * sb;
        let mut out = buf;
        out.clear();
        out.extend(acc.iter().map(|&q| dequantize_value(q, scale)));
        Tensor::from_vec(out, &[m, n])
    }

    /// Scalar-oracle quantized matmul: identical quantization policy, but
    /// the widening GEMM is the in-tree [`quant_gemm_reference`]. The fast
    /// path must match this bit-for-bit (proptested in
    /// `tests/tests/quant_equiv.rs`).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`quant_matmul`](Self::quant_matmul).
    pub fn quant_matmul_reference(&self, other: &Tensor<f32>) -> Result<Tensor<f32>> {
        let (m, k, n) = quant_matmul_check(self, other)?;
        let (qa, sa) = quantize_symmetric(self.data());
        let (qb, sb) = quantize_symmetric(other.data());
        let acc = quant_gemm_reference(&qa, m, k, &qb, n);
        let scale = sa * sb;
        let out = acc.iter().map(|&q| dequantize_value(q, scale)).collect();
        Tensor::from_vec(out, &[m, n])
    }

    /// Int8-quantized affine layer `x @ w^T + b` with a per-tensor scale
    /// on the activations and **per-output-channel** symmetric scales on
    /// the weight rows (PyTorch `nn.Linear` layout: `w: [out, in]`).
    ///
    /// Each output element is dequantized with one `f64` multiply by
    /// `scale_x * scale_w[channel]` and one rounding to `f32`; the bias is
    /// then added in `f32` with one more rounding, mirroring the float
    /// [`linear`](Self::linear) bias placement.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched feature dimensions.
    pub fn quant_linear(
        &self,
        weight: &Tensor<f32>,
        bias: Option<&Tensor<f32>>,
    ) -> Result<Tensor<f32>> {
        self.quant_linear_with_buf(weight, bias, Vec::new())
    }

    /// [`quant_linear`](Self::quant_linear) into a recycled output buffer.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`quant_linear`](Self::quant_linear).
    pub fn quant_linear_with_buf(
        &self,
        weight: &Tensor<f32>,
        bias: Option<&Tensor<f32>>,
        buf: Vec<f32>,
    ) -> Result<Tensor<f32>> {
        let (rows, in_f, out_f, sx, sw, qx, qw) = self.quant_linear_prepare(weight, bias)?;
        // Weight rows are already the dot-product columns, so the packed
        // panels read the quantized weight transposed — the same layout
        // trick the float linear uses.
        let rhs = PackedRhs::from_transposed(&qw, out_f, in_f);
        let mut acc = vec![0i32; rows * out_f];
        quant_gemm_into(
            &qx,
            rows,
            &rhs,
            &mut acc,
            auto_threads((rows * in_f * out_f) as u64),
        );
        let mut out = buf;
        out.clear();
        out.extend(acc.chunks(out_f.max(1)).flat_map(|row| {
            row.iter()
                .enumerate()
                .map(|(c, &q)| dequantize_value(q, sx * sw[c]))
        }));
        if let Some(b) = bias {
            for row in out.chunks_mut(out_f) {
                for (v, &bv) in row.iter_mut().zip(b.data()) {
                    *v += bv;
                }
            }
        }
        let mut out_dims = self.dims().to_vec();
        *out_dims.last_mut().expect("checked rank >= 1") = out_f;
        Tensor::from_vec(out, &out_dims)
    }

    /// Scalar-oracle quantized linear (see
    /// [`quant_matmul_reference`](Self::quant_matmul_reference)).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`quant_linear`](Self::quant_linear).
    pub fn quant_linear_reference(
        &self,
        weight: &Tensor<f32>,
        bias: Option<&Tensor<f32>>,
    ) -> Result<Tensor<f32>> {
        let (rows, in_f, out_f, sx, sw, qx, qw) = self.quant_linear_prepare(weight, bias)?;
        // The oracle GEMM wants a row-major [in_f, out_f] rhs.
        let mut qwt = vec![0i8; in_f * out_f];
        for o in 0..out_f {
            for i in 0..in_f {
                qwt[i * out_f + o] = qw[o * in_f + i];
            }
        }
        let acc = quant_gemm_reference(&qx, rows, in_f, &qwt, out_f);
        let mut out: Vec<f32> = acc
            .chunks(out_f.max(1))
            .flat_map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(c, &q)| dequantize_value(q, sx * sw[c]))
            })
            .collect();
        if let Some(b) = bias {
            for row in out.chunks_mut(out_f) {
                for (v, &bv) in row.iter_mut().zip(b.data()) {
                    *v += bv;
                }
            }
        }
        let mut out_dims = self.dims().to_vec();
        *out_dims.last_mut().expect("checked rank >= 1") = out_f;
        Tensor::from_vec(out, &out_dims)
    }

    /// Shared validation + quantization front half of both quant-linear
    /// kernels: returns `(rows, in_f, out_f, scale_x, scales_w, qx, qw)`.
    #[allow(clippy::type_complexity)]
    fn quant_linear_prepare(
        &self,
        weight: &Tensor<f32>,
        bias: Option<&Tensor<f32>>,
    ) -> Result<(usize, usize, usize, f64, Vec<f64>, Vec<i8>, Vec<i8>)> {
        if weight.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: weight.rank(),
                op: "quant_linear weight",
            });
        }
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                got: 0,
                op: "quant_linear input",
            });
        }
        let in_f = self.dims()[self.rank() - 1];
        let (out_f, w_in) = (weight.dims()[0], weight.dims()[1]);
        if w_in != in_f {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: weight.dims().to_vec(),
                op: "quant_linear",
            });
        }
        if let Some(b) = bias {
            if b.dims() != [out_f] {
                return Err(TensorError::ShapeMismatch {
                    lhs: vec![out_f],
                    rhs: b.dims().to_vec(),
                    op: "quant_linear bias",
                });
            }
        }
        let rows = self.len() / in_f.max(1);
        let (qx, sx) = quantize_symmetric(self.data());
        // Per-channel: one symmetric scale per weight row (output channel).
        let mut qw = Vec::with_capacity(out_f * in_f);
        let mut sw = Vec::with_capacity(out_f);
        for o in 0..out_f {
            let w_row = &weight.data()[o * in_f..(o + 1) * in_f];
            let s = symmetric_scale(max_abs(w_row));
            qw.extend(w_row.iter().map(|&x| quantize_value(x, s)));
            sw.push(s);
        }
        Ok((rows, in_f, out_f, sx, sw, qx, qw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_eq(a: &Tensor<f32>, b: &Tensor<f32>) -> bool {
        a.dims() == b.dims()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn quant_matmul_matches_oracle_bitwise() {
        let a = Tensor::<f32>::rand_uniform(&[9, 37], -4.0, 4.0, 5);
        let b = Tensor::<f32>::rand_uniform(&[37, 13], -0.7, 0.7, 6);
        let fast = a.quant_matmul(&b).unwrap();
        let slow = a.quant_matmul_reference(&b).unwrap();
        assert!(bits_eq(&fast, &slow));
    }

    #[test]
    fn quant_linear_matches_oracle_bitwise() {
        let x = Tensor::<f32>::rand_uniform(&[2, 5, 33], -3.0, 3.0, 7);
        let w = Tensor::<f32>::rand_uniform(&[21, 33], -1.0, 1.0, 8);
        let b = Tensor::<f32>::rand_uniform(&[21], -1.0, 1.0, 9);
        for bias in [None, Some(&b)] {
            let fast = x.quant_linear(&w, bias).unwrap();
            let slow = x.quant_linear_reference(&w, bias).unwrap();
            assert!(bits_eq(&fast, &slow));
            assert_eq!(fast.dims(), &[2, 5, 21]);
        }
    }

    #[test]
    fn quant_matmul_approximates_float_matmul() {
        let a = Tensor::<f32>::rand_uniform(&[8, 32], -1.0, 1.0, 11);
        let b = Tensor::<f32>::rand_uniform(&[32, 8], -1.0, 1.0, 12);
        let exact = a
            .matmul(&b, &crate::accum::KernelConfig::reference())
            .unwrap();
        let quant = a.quant_matmul(&b).unwrap();
        for (e, q) in exact.data().iter().zip(quant.data()) {
            // 32-term dot of ~1% granular int8 values.
            assert!((e - q).abs() < 0.2, "exact {e} quant {q}");
        }
    }

    #[test]
    fn fake_quant_roundtrip() {
        let x = Tensor::<f32>::from_vec(vec![0.4, -1.3, 2.0, 0.0], &[4]).unwrap();
        let q = x.quantize_static(0.5).unwrap();
        assert_eq!(q.data(), &[1.0, -3.0, 4.0, 0.0]);
        let d = q.dequantize_static(0.5).unwrap();
        assert_eq!(d.data(), &[0.5, -1.5, 2.0, 0.0]);
        // Round trip error bounded by half a quantization step.
        for (orig, back) in x.data().iter().zip(d.data()) {
            assert!((orig - back).abs() <= 0.25 + 1e-6);
        }
    }

    #[test]
    fn static_scale_validated() {
        let x = Tensor::<f32>::ones(&[2]);
        assert!(x.quantize_static(0.0).is_err());
        assert!(x.quantize_static(f64::NAN).is_err());
        assert!(x.dequantize_static(-1.0).is_err());
        assert!(x.quantize_static(0.5).is_ok());
    }

    #[test]
    fn quant_matmul_rejects_bad_shapes() {
        let a = Tensor::<f32>::zeros(&[2, 3]);
        let b = Tensor::<f32>::zeros(&[2, 2]);
        assert!(a.quant_matmul(&b).is_err());
        let batched = Tensor::<f32>::zeros(&[2, 2, 3]);
        assert!(batched.quant_matmul(&a).is_err());
        let w_bad = Tensor::<f32>::zeros(&[2, 2]);
        assert!(a.quant_linear(&w_bad, None).is_err());
    }
}
