//! Operator kernels grouped by family.
//!
//! Every kernel that performs a reduction or can be contracted takes a
//! [`crate::KernelConfig`], making its IEEE-754 rounding order an explicit
//! input rather than an accident of the implementation. The kernels are the
//! single source of truth for *how* each operator computes, and the bound
//! templates in `tao-bounds` mirror their sub-step structure.

pub mod activation;
pub mod conv;
pub mod elementwise;
pub mod embedding;
pub mod linalg;
pub mod norm;
pub mod pool;
pub mod quant;
pub mod reduce;
