//! Activation functions and transcendental elementwise kernels.
//!
//! Transcendental kernels dispatch through the [`crate::MathLib`] selected by the
//! caller's [`KernelConfig`], so two simulated devices produce genuinely
//! different last-bit results for the same input — exactly the intrinsic
//! ULP drift the TAO paper calibrates against.

use crate::accum::KernelConfig;
use crate::element::Element;
use crate::math::MathElement;
use crate::tensor::Tensor;

/// `sqrt(2/pi)` constant used by the tanh-based GELU approximation.
const GELU_C: f64 = 0.797_884_560_802_865_4;

impl<T: MathElement> Tensor<T> {
    /// Rectified linear unit `max(x, 0)`.
    pub fn relu(&self) -> Tensor<T> {
        self.map(|x| x.maximum(T::ZERO))
    }

    /// [`relu`](Self::relu) into a recycled buffer (identical result).
    pub fn relu_with_buf(&self, buf: Vec<T>) -> Tensor<T> {
        self.map_with_buf(buf, |x| x.maximum(T::ZERO))
    }

    /// Gaussian error linear unit (tanh approximation, as used by BERT/GPT).
    ///
    /// `0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))`.
    pub fn gelu(&self, cfg: &KernelConfig) -> Tensor<T> {
        let c = T::from_f64(GELU_C);
        let k = T::from_f64(0.044_715);
        let half = T::from_f64(0.5);
        self.map(|x| {
            let inner = c * (x + k * x * x * x);
            half * x * (T::ONE + inner.tanh_with(cfg.math))
        })
    }

    /// Sigmoid linear unit `x * sigmoid(x)` (a.k.a. swish).
    pub fn silu(&self, cfg: &KernelConfig) -> Tensor<T> {
        self.map(|x| x * x.sigmoid_with(cfg.math))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, cfg: &KernelConfig) -> Tensor<T> {
        self.map(|x| x.sigmoid_with(cfg.math))
    }

    /// Elementwise exponential.
    pub fn exp(&self, cfg: &KernelConfig) -> Tensor<T> {
        self.map(|x| x.exp_with(cfg.math))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self, cfg: &KernelConfig) -> Tensor<T> {
        self.map(|x| x.ln_with(cfg.math))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self, cfg: &KernelConfig) -> Tensor<T> {
        self.map(|x| x.tanh_with(cfg.math))
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor<T> {
        self.map(|x| x.sqrt())
    }

    /// Elementwise reciprocal square root.
    pub fn rsqrt(&self, cfg: &KernelConfig) -> Tensor<T> {
        self.map(|x| x.rsqrt_with(cfg.math))
    }

    /// Elementwise sine.
    pub fn sin(&self) -> Tensor<T> {
        self.map(|x| Element::sin(x))
    }

    /// Elementwise cosine.
    pub fn cos(&self) -> Tensor<T> {
        self.map(|x| Element::cos(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::MathLib;

    fn cfg() -> KernelConfig {
        KernelConfig::reference()
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::<f32>::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(t.relu().data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn gelu_reference_values() {
        // Reference values from the tanh approximation.
        let t = Tensor::<f32>::from_vec(vec![0.0, 1.0, -1.0], &[3]).unwrap();
        let g = t.gelu(&cfg());
        assert_eq!(g.data()[0], 0.0);
        assert!((g.data()[1] - 0.841_192).abs() < 1e-4);
        assert!((g.data()[2] + 0.158_808).abs() < 1e-4);
    }

    #[test]
    fn silu_at_zero_and_large() {
        let t = Tensor::<f32>::from_vec(vec![0.0, 10.0], &[2]).unwrap();
        let s = t.silu(&cfg());
        assert_eq!(s.data()[0], 0.0);
        assert!((s.data()[1] - 10.0).abs() < 1e-3);
    }

    #[test]
    fn sigmoid_symmetric() {
        let t = Tensor::<f32>::from_vec(vec![-3.0, 3.0], &[2]).unwrap();
        let s = t.sigmoid(&cfg());
        assert!((s.data()[0] + s.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exp_ln_roundtrip() {
        let t = Tensor::<f32>::from_vec(vec![0.5, 1.0, 2.0], &[3]).unwrap();
        let r = t.exp(&cfg()).ln(&cfg());
        for (a, b) in r.data().iter().zip(t.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn intrinsic_family_changes_bits() {
        let t = Tensor::<f32>::rand_uniform(&[256], -4.0, 4.0, 3);
        let a = t.exp(&KernelConfig {
            math: MathLib::VariantA,
            ..cfg()
        });
        let b = t.exp(&KernelConfig {
            math: MathLib::VariantB,
            ..cfg()
        });
        assert_ne!(a.data(), b.data());
        // But both stay within a few ULP of the reference.
        let r = t.exp(&cfg());
        for i in 0..t.len() {
            let rel = ((a.data()[i] - r.data()[i]) / r.data()[i]).abs();
            assert!(rel < 1e-5, "variantA exp rel err {rel}");
            let rel = ((b.data()[i] - r.data()[i]) / r.data()[i]).abs();
            assert!(rel < 1e-5, "variantB exp rel err {rel}");
        }
    }

    #[test]
    fn sqrt_rsqrt_consistent() {
        let t = Tensor::<f32>::from_vec(vec![4.0, 9.0], &[2]).unwrap();
        assert_eq!(t.sqrt().data(), &[2.0, 3.0]);
        let r = t.rsqrt(&cfg());
        assert!((r.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sin_cos_pythagorean() {
        let t = Tensor::<f32>::rand_uniform(&[32], -3.0, 3.0, 5);
        let s = t.sin();
        let c = t.cos();
        for i in 0..t.len() {
            let v = s.data()[i] * s.data()[i] + c.data()[i] * c.data()[i];
            assert!((v - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn tanh_bounded() {
        let t = Tensor::<f32>::rand_uniform(&[64], -20.0, 20.0, 9);
        for lib in [MathLib::Reference, MathLib::VariantA, MathLib::VariantB] {
            let out = t.tanh(&KernelConfig { math: lib, ..cfg() });
            assert!(out.data().iter().all(|&x| (-1.0..=1.0).contains(&x)));
        }
    }
}
