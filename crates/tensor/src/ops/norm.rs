//! Softmax and normalization layers.
//!
//! Each kernel follows the exact sub-step decomposition the bound templates
//! in `tao-bounds` model — e.g. softmax is computed as
//! `m = max(x); z = x - m; e = exp(z); S = Σe; y = e / S`, matching §3.1 of
//! the paper.

use crate::accum::KernelConfig;
use crate::error::TensorError;
use crate::kernel::{auto_threads, par_bands};
use crate::math::MathElement;
use crate::tensor::Tensor;
use crate::Result;

impl<T: MathElement> Tensor<T> {
    /// Softmax along the last axis.
    ///
    /// Lanes are independent, so large inputs fan the per-lane pipeline
    /// (`m = max(x); e = exp(x - m); S = Σe; y = e / S`) out over scoped
    /// worker threads; every lane runs the identical instruction sequence
    /// at any thread count, so results are bit-identical to
    /// [`Tensor::softmax_last_reference`].
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors.
    pub fn softmax_last(&self, cfg: &KernelConfig) -> Result<Tensor<T>> {
        self.softmax_last_with_buf(cfg, Vec::new())
    }

    /// [`softmax_last`](Self::softmax_last) into a recycled output buffer:
    /// bit-identical results, but the output tensor reuses `buf`'s
    /// allocation when its capacity suffices.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`softmax_last`](Self::softmax_last).
    pub fn softmax_last_with_buf(&self, cfg: &KernelConfig, buf: Vec<T>) -> Result<Tensor<T>> {
        let d = self.last_axis_check("softmax")?;
        let mut out = buf;
        out.clear();
        out.resize(self.len(), T::ZERO);
        let threads = auto_threads(self.len() as u64 * 4);
        par_bands(&mut out, d, threads, |lane0, band| {
            let mut e = vec![T::ZERO; d];
            for (i, out_lane) in band.chunks_mut(d).enumerate() {
                let lane = &self.data()[(lane0 + i) * d..(lane0 + i + 1) * d];
                let m = lane.iter().copied().fold(lane[0], |a, b| a.maximum(b));
                for (slot, &x) in e.iter_mut().zip(lane) {
                    *slot = (x - m).exp_with(cfg.math);
                }
                let s = cfg.sum(&e);
                for (slot, &ei) in out_lane.iter_mut().zip(&e) {
                    *slot = ei / s;
                }
            }
        });
        Tensor::from_vec(out, self.dims())
    }

    /// Scalar-oracle softmax (single-threaded seed loop), kept in-tree as
    /// the bit-exactness reference for [`Tensor::softmax_last`].
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Tensor::softmax_last`].
    pub fn softmax_last_reference(&self, cfg: &KernelConfig) -> Result<Tensor<T>> {
        let d = self.last_axis_check("softmax")?;
        let mut out = Vec::with_capacity(self.len());
        let mut e = vec![T::ZERO; d];
        for lane in self.data().chunks(d) {
            let m = lane.iter().copied().fold(lane[0], |a, b| a.maximum(b));
            for (i, &x) in lane.iter().enumerate() {
                e[i] = (x - m).exp_with(cfg.math);
            }
            let s = cfg.sum(&e);
            for &ei in &e {
                out.push(ei / s);
            }
        }
        Tensor::from_vec(out, self.dims())
    }

    /// Validates a non-empty last axis for lane-wise kernels.
    fn last_axis_check(&self, op: &'static str) -> Result<usize> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                got: 0,
                op,
            });
        }
        let d = self.dims()[self.rank() - 1];
        if d == 0 {
            return Err(TensorError::InvalidArgument(format!(
                "{op} over empty axis"
            )));
        }
        Ok(d)
    }

    /// Layer normalization over the last axis with affine parameters.
    ///
    /// `y = (x - mean) / sqrt(var + eps) * gamma + beta` where mean/var are
    /// per-lane reductions under `cfg`'s accumulation order.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 input or parameter shape mismatches.
    pub fn layer_norm(
        &self,
        gamma: &Tensor<T>,
        beta: &Tensor<T>,
        eps: f64,
        cfg: &KernelConfig,
    ) -> Result<Tensor<T>> {
        self.layer_norm_with_buf(gamma, beta, eps, cfg, Vec::new())
    }

    /// [`layer_norm`](Self::layer_norm) into a recycled output buffer
    /// (identical results; see [`softmax_last_with_buf`](Self::softmax_last_with_buf)).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`layer_norm`](Self::layer_norm).
    pub fn layer_norm_with_buf(
        &self,
        gamma: &Tensor<T>,
        beta: &Tensor<T>,
        eps: f64,
        cfg: &KernelConfig,
        buf: Vec<T>,
    ) -> Result<Tensor<T>> {
        let d = self.layer_norm_check(gamma, beta)?;
        let nd = T::from_f64(d as f64);
        let epsd = T::from_f64(eps);
        let mut out = buf;
        out.clear();
        out.resize(self.len(), T::ZERO);
        let threads = auto_threads(self.len() as u64 * 4);
        par_bands(&mut out, d, threads, |lane0, band| {
            let mut centered = vec![T::ZERO; d];
            let mut sq = vec![T::ZERO; d];
            for (i, out_lane) in band.chunks_mut(d).enumerate() {
                let lane = &self.data()[(lane0 + i) * d..(lane0 + i + 1) * d];
                let mean = cfg.sum(lane) / nd;
                for ((cen, s), &x) in centered.iter_mut().zip(sq.iter_mut()).zip(lane) {
                    *cen = x - mean;
                    *s = *cen * *cen;
                }
                let var = cfg.sum(&sq) / nd;
                let inv = (var + epsd).rsqrt_with(cfg.math);
                for (((slot, &c), &g), &b) in out_lane
                    .iter_mut()
                    .zip(&centered)
                    .zip(gamma.data())
                    .zip(beta.data())
                {
                    *slot = c * inv * g + b;
                }
            }
        });
        Tensor::from_vec(out, self.dims())
    }

    /// Scalar-oracle layer normalization (single-threaded seed loop); the
    /// bit-exactness reference for [`Tensor::layer_norm`].
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Tensor::layer_norm`].
    pub fn layer_norm_reference(
        &self,
        gamma: &Tensor<T>,
        beta: &Tensor<T>,
        eps: f64,
        cfg: &KernelConfig,
    ) -> Result<Tensor<T>> {
        let d = self.layer_norm_check(gamma, beta)?;
        let nd = T::from_f64(d as f64);
        let epsd = T::from_f64(eps);
        let mut out = Vec::with_capacity(self.len());
        let mut centered = vec![T::ZERO; d];
        let mut sq = vec![T::ZERO; d];
        for lane in self.data().chunks(d) {
            let mean = cfg.sum(lane) / nd;
            for (i, &x) in lane.iter().enumerate() {
                centered[i] = x - mean;
                sq[i] = centered[i] * centered[i];
            }
            let var = cfg.sum(&sq) / nd;
            let inv = (var + epsd).rsqrt_with(cfg.math);
            for ((&c, &g), &b) in centered.iter().zip(gamma.data()).zip(beta.data()) {
                out.push(c * inv * g + b);
            }
        }
        Tensor::from_vec(out, self.dims())
    }

    /// Validates layer-norm parameter shapes; returns the lane width.
    fn layer_norm_check(&self, gamma: &Tensor<T>, beta: &Tensor<T>) -> Result<usize> {
        let d = self.last_axis_check("layer_norm")?;
        if gamma.dims() != [d] || beta.dims() != [d] {
            return Err(TensorError::ShapeMismatch {
                lhs: vec![d],
                rhs: gamma.dims().to_vec(),
                op: "layer_norm params",
            });
        }
        Ok(d)
    }

    /// RMS normalization over the last axis (no mean subtraction), as used
    /// by Qwen/LLaMA-family models.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 input or a parameter shape mismatch.
    pub fn rms_norm(&self, gamma: &Tensor<T>, eps: f64, cfg: &KernelConfig) -> Result<Tensor<T>> {
        self.rms_norm_with_buf(gamma, eps, cfg, Vec::new())
    }

    /// [`rms_norm`](Self::rms_norm) into a recycled output buffer
    /// (identical results; see [`softmax_last_with_buf`](Self::softmax_last_with_buf)).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`rms_norm`](Self::rms_norm).
    pub fn rms_norm_with_buf(
        &self,
        gamma: &Tensor<T>,
        eps: f64,
        cfg: &KernelConfig,
        buf: Vec<T>,
    ) -> Result<Tensor<T>> {
        let d = self.rms_norm_check(gamma)?;
        let nd = T::from_f64(d as f64);
        let epsd = T::from_f64(eps);
        let mut out = buf;
        out.clear();
        out.resize(self.len(), T::ZERO);
        let threads = auto_threads(self.len() as u64 * 3);
        par_bands(&mut out, d, threads, |lane0, band| {
            let mut sq = vec![T::ZERO; d];
            for (i, out_lane) in band.chunks_mut(d).enumerate() {
                let lane = &self.data()[(lane0 + i) * d..(lane0 + i + 1) * d];
                for (s, &x) in sq.iter_mut().zip(lane) {
                    *s = x * x;
                }
                let ms = cfg.sum(&sq) / nd;
                let inv = (ms + epsd).rsqrt_with(cfg.math);
                for ((slot, &x), &g) in out_lane.iter_mut().zip(lane).zip(gamma.data()) {
                    *slot = x * inv * g;
                }
            }
        });
        Tensor::from_vec(out, self.dims())
    }

    /// Scalar-oracle RMS normalization (single-threaded seed loop); the
    /// bit-exactness reference for [`Tensor::rms_norm`].
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Tensor::rms_norm`].
    pub fn rms_norm_reference(
        &self,
        gamma: &Tensor<T>,
        eps: f64,
        cfg: &KernelConfig,
    ) -> Result<Tensor<T>> {
        let d = self.rms_norm_check(gamma)?;
        let nd = T::from_f64(d as f64);
        let epsd = T::from_f64(eps);
        let mut out = Vec::with_capacity(self.len());
        let mut sq = vec![T::ZERO; d];
        for lane in self.data().chunks(d) {
            for (i, &x) in lane.iter().enumerate() {
                sq[i] = x * x;
            }
            let ms = cfg.sum(&sq) / nd;
            let inv = (ms + epsd).rsqrt_with(cfg.math);
            for (i, &x) in lane.iter().enumerate() {
                out.push(x * inv * gamma.data()[i]);
            }
        }
        Tensor::from_vec(out, self.dims())
    }

    /// Validates rms-norm parameter shapes; returns the lane width.
    fn rms_norm_check(&self, gamma: &Tensor<T>) -> Result<usize> {
        let d = self.last_axis_check("rms_norm")?;
        if gamma.dims() != [d] {
            return Err(TensorError::ShapeMismatch {
                lhs: vec![d],
                rhs: gamma.dims().to_vec(),
                op: "rms_norm params",
            });
        }
        Ok(d)
    }

    /// Inference-mode batch normalization over NCHW input using running
    /// statistics: `y = (x - mean_c) / sqrt(var_c + eps) * gamma_c + beta_c`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-4D input or per-channel parameter
    /// mismatches.
    pub fn batch_norm2d(
        &self,
        gamma: &Tensor<T>,
        beta: &Tensor<T>,
        running_mean: &Tensor<T>,
        running_var: &Tensor<T>,
        eps: f64,
        cfg: &KernelConfig,
    ) -> Result<Tensor<T>> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                got: self.rank(),
                op: "batch_norm2d",
            });
        }
        let c = self.dims()[1];
        for (p, name) in [
            (gamma, "gamma"),
            (beta, "beta"),
            (running_mean, "running_mean"),
            (running_var, "running_var"),
        ] {
            if p.dims() != [c] {
                return Err(TensorError::InvalidArgument(format!(
                    "batch_norm2d: {name} must have shape [{c}], got {:?}",
                    p.dims()
                )));
            }
        }
        let (n, h, w) = (self.dims()[0], self.dims()[2], self.dims()[3]);
        let hw = h * w;
        let epsd = T::from_f64(eps);
        let mut out = Vec::with_capacity(self.len());
        for ni in 0..n {
            for ci in 0..c {
                let inv = (running_var.data()[ci] + epsd).rsqrt_with(cfg.math);
                let g = gamma.data()[ci];
                let b = beta.data()[ci];
                let m = running_mean.data()[ci];
                let base = (ni * c + ci) * hw;
                for &x in &self.data()[base..base + hw] {
                    out.push((x - m) * inv * g + b);
                }
            }
        }
        Tensor::from_vec(out, self.dims())
    }

    /// Group normalization over NCHW input with `groups` channel groups.
    ///
    /// # Errors
    ///
    /// Returns an error if `groups` does not divide the channel count or
    /// parameter shapes mismatch.
    pub fn group_norm(
        &self,
        groups: usize,
        gamma: &Tensor<T>,
        beta: &Tensor<T>,
        eps: f64,
        cfg: &KernelConfig,
    ) -> Result<Tensor<T>> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                got: self.rank(),
                op: "group_norm",
            });
        }
        let (n, c, h, w) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        if groups == 0 || c % groups != 0 {
            return Err(TensorError::InvalidArgument(format!(
                "group_norm: {groups} groups do not divide {c} channels"
            )));
        }
        if gamma.dims() != [c] || beta.dims() != [c] {
            return Err(TensorError::ShapeMismatch {
                lhs: vec![c],
                rhs: gamma.dims().to_vec(),
                op: "group_norm params",
            });
        }
        let cg = c / groups;
        let group_len = cg * h * w;
        let nd = T::from_f64(group_len as f64);
        let epsd = T::from_f64(eps);
        let mut out = vec![T::ZERO; self.len()];
        let mut sq = vec![T::ZERO; group_len];
        for ni in 0..n {
            for g in 0..groups {
                let base = (ni * c + g * cg) * h * w;
                let lane = &self.data()[base..base + group_len];
                let mean = cfg.sum(lane) / nd;
                for (i, &x) in lane.iter().enumerate() {
                    let cen = x - mean;
                    sq[i] = cen * cen;
                }
                let var = cfg.sum(&sq) / nd;
                let inv = (var + epsd).rsqrt_with(cfg.math);
                for i in 0..group_len {
                    let ch = g * cg + i / (h * w);
                    out[base + i] = (lane[i] - mean) * inv * gamma.data()[ch] + beta.data()[ch];
                }
            }
        }
        Tensor::from_vec(out, self.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> KernelConfig {
        KernelConfig::reference()
    }

    #[test]
    fn softmax_sums_to_one() {
        let t = Tensor::<f32>::rand_uniform(&[4, 7], -5.0, 5.0, 1);
        let s = t.softmax_last(&cfg()).unwrap();
        for lane in s.data().chunks(7) {
            let total: f32 = lane.iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
            assert!(lane.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let shifted = t.add_scalar(100.0);
        let a = t.softmax_last(&cfg()).unwrap();
        let b = shifted.softmax_last(&cfg()).unwrap();
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let t = Tensor::<f32>::from_vec(vec![1000.0, 1001.0], &[2]).unwrap();
        let s = t.softmax_last(&cfg()).unwrap();
        assert!(s.all_finite());
        assert!((s.data()[0] + s.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let t = Tensor::<f32>::rand_uniform(&[3, 64], -2.0, 5.0, 2);
        let gamma = Tensor::<f32>::ones(&[64]);
        let beta = Tensor::<f32>::zeros(&[64]);
        let y = t.layer_norm(&gamma, &beta, 1e-5, &cfg()).unwrap();
        for lane in y.data().chunks(64) {
            let mean: f32 = lane.iter().sum::<f32>() / 64.0;
            let var: f32 = lane.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn layer_norm_affine_applies() {
        let t = Tensor::<f32>::rand_uniform(&[2, 8], -1.0, 1.0, 3);
        let gamma = Tensor::<f32>::full(&[8], 2.0);
        let beta = Tensor::<f32>::full(&[8], 1.0);
        let base = t
            .layer_norm(&Tensor::ones(&[8]), &Tensor::zeros(&[8]), 1e-5, &cfg())
            .unwrap();
        let y = t.layer_norm(&gamma, &beta, 1e-5, &cfg()).unwrap();
        for (b, v) in base.data().iter().zip(y.data()) {
            assert!((v - (2.0 * b + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn rms_norm_unit_rms() {
        let t = Tensor::<f32>::rand_uniform(&[2, 32], 0.5, 2.0, 4);
        let gamma = Tensor::<f32>::ones(&[32]);
        let y = t.rms_norm(&gamma, 1e-6, &cfg()).unwrap();
        for lane in y.data().chunks(32) {
            let ms: f32 = lane.iter().map(|&x| x * x).sum::<f32>() / 32.0;
            assert!((ms - 1.0).abs() < 1e-3, "ms {ms}");
        }
    }

    #[test]
    fn batch_norm_normalizes_with_running_stats() {
        let x = Tensor::<f32>::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[1, 1, 2, 2]).unwrap();
        let y = x
            .batch_norm2d(
                &Tensor::ones(&[1]),
                &Tensor::zeros(&[1]),
                &Tensor::from_vec(vec![5.0], &[1]).unwrap(),
                &Tensor::from_vec(vec![4.0], &[1]).unwrap(),
                0.0,
                &cfg(),
            )
            .unwrap();
        assert_eq!(y.data(), &[-1.5, -0.5, 0.5, 1.5]);
    }

    #[test]
    fn group_norm_per_group_stats() {
        let x = Tensor::<f32>::rand_uniform(&[1, 4, 3, 3], -3.0, 3.0, 5);
        let y = x
            .group_norm(2, &Tensor::ones(&[4]), &Tensor::zeros(&[4]), 1e-5, &cfg())
            .unwrap();
        // Each group of 2 channels should have near-zero mean.
        let group_len = 2 * 9;
        for g in 0..2 {
            let lane = &y.data()[g * group_len..(g + 1) * group_len];
            let mean: f32 = lane.iter().sum::<f32>() / group_len as f32;
            assert!(mean.abs() < 1e-4);
        }
        assert!(x
            .group_norm(3, &Tensor::ones(&[4]), &Tensor::zeros(&[4]), 1e-5, &cfg())
            .is_err());
    }

    #[test]
    fn parallel_lanes_bits_match_reference_oracle() {
        use crate::math::MathLib;
        // Big enough to cross the thread fan-out threshold.
        let t = Tensor::<f32>::rand_uniform(&[512, 128], -4.0, 4.0, 17);
        let gamma = Tensor::<f32>::rand_uniform(&[128], 0.5, 1.5, 18);
        let beta = Tensor::<f32>::rand_uniform(&[128], -0.5, 0.5, 19);
        let c = KernelConfig {
            math: MathLib::VariantA,
            ..cfg()
        };
        let bits = |t: &Tensor<f32>| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&t.softmax_last(&c).unwrap()),
            bits(&t.softmax_last_reference(&c).unwrap())
        );
        assert_eq!(
            bits(&t.layer_norm(&gamma, &beta, 1e-5, &c).unwrap()),
            bits(&t.layer_norm_reference(&gamma, &beta, 1e-5, &c).unwrap())
        );
        assert_eq!(
            bits(&t.rms_norm(&gamma, 1e-6, &c).unwrap()),
            bits(&t.rms_norm_reference(&gamma, 1e-6, &c).unwrap())
        );
    }

    #[test]
    fn shape_errors() {
        let t = Tensor::<f32>::zeros(&[2, 4]);
        assert!(t
            .layer_norm(&Tensor::ones(&[3]), &Tensor::zeros(&[4]), 1e-5, &cfg())
            .is_err());
        assert!(t.rms_norm(&Tensor::ones(&[5]), 1e-6, &cfg()).is_err());
        let s = Tensor::<f32>::scalar(1.0);
        assert!(s.softmax_last(&cfg()).is_err());
    }
}
