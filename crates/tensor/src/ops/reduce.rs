//! Reductions along axes with pluggable accumulation order.
//!
//! Lanes along the reduced axis are independent, so [`Tensor::sum_axis`]
//! and friends fan output positions over scoped worker threads for large
//! tensors; each lane is still materialized contiguously and reduced with
//! the exact single-thread instruction sequence, so results are
//! bit-identical at every thread count. Whole-tensor reductions
//! ([`Tensor::sum_all`]) are a single ordered chain and stay serial by
//! construction.

use crate::accum::KernelConfig;
use crate::element::Element;
use crate::error::TensorError;
use crate::kernel::{auto_threads, par_bands};
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

impl<T: Element> Tensor<T> {
    /// Sums all elements under the given accumulation order.
    pub fn sum_all(&self, cfg: &KernelConfig) -> T {
        cfg.sum(self.data())
    }

    /// Mean of all elements under the given accumulation order.
    pub fn mean_all(&self, cfg: &KernelConfig) -> T {
        if self.is_empty() {
            return T::ZERO;
        }
        cfg.sum(self.data()) / T::from_f64(self.len() as f64)
    }

    /// Sums along `axis`, removing it.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range axis.
    pub fn sum_axis(&self, axis: usize, cfg: &KernelConfig) -> Result<Tensor<T>> {
        self.reduce_axis(axis, |lane| cfg.sum(lane))
    }

    /// Means along `axis`, removing it.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range axis.
    pub fn mean_axis(&self, axis: usize, cfg: &KernelConfig) -> Result<Tensor<T>> {
        let n = T::from_f64(self.shape().dim(axis)? as f64);
        self.reduce_axis(axis, |lane| cfg.sum(lane) / n)
    }

    /// Maximum along `axis`, removing it.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range axis.
    pub fn max_axis(&self, axis: usize) -> Result<Tensor<T>> {
        self.reduce_axis(axis, |lane| {
            lane.iter().copied().fold(lane[0], |m, x| m.maximum(x))
        })
    }

    /// Minimum along `axis`, removing it.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range axis.
    pub fn min_axis(&self, axis: usize) -> Result<Tensor<T>> {
        self.reduce_axis(axis, |lane| {
            lane.iter().copied().fold(lane[0], |m, x| m.minimum(x))
        })
    }

    /// Index of the maximum along the last axis (ties resolve to the first).
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors.
    pub fn argmax_last_axis(&self) -> Result<Vec<usize>> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                got: 0,
                op: "argmax_last_axis",
            });
        }
        let last = self.dims()[self.rank() - 1];
        let mut out = Vec::with_capacity(self.len() / last.max(1));
        for lane in self.data().chunks(last) {
            let mut best = 0;
            for (i, &v) in lane.iter().enumerate() {
                if v > lane[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Applies `f` to every lane along `axis`, producing a tensor with the
    /// axis removed. The lane is materialized contiguously so `f` sees the
    /// elements in canonical axis order (this fixes the reduction order that
    /// the accumulation mode then permutes *internally*).
    fn reduce_axis(&self, axis: usize, f: impl Fn(&[T]) -> T + Sync) -> Result<Tensor<T>> {
        let extent = self.shape().dim(axis)?;
        if extent == 0 {
            return Err(TensorError::InvalidArgument(
                "reduce over empty axis".into(),
            ));
        }
        let mut out_dims = self.dims().to_vec();
        out_dims.remove(axis);
        let out_shape = Shape::new(&out_dims);
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let mut out = vec![T::ZERO; out_shape.volume()];
        let threads = auto_threads(self.len() as u64);
        par_bands(&mut out, 1, threads, |pos0, band| {
            let mut lane = vec![T::ZERO; extent];
            for (off, slot) in band.iter_mut().enumerate() {
                // Output position -> (outer, inner) coordinates.
                let pos = pos0 + off;
                let (o, i) = (pos / inner.max(1), pos % inner.max(1));
                for (k, l) in lane.iter_mut().enumerate() {
                    *l = self.data()[o * extent * inner + k * inner + i];
                }
                *slot = f(&lane);
            }
        });
        Tensor::from_vec(out, &out_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::AccumMode;

    fn cfg() -> KernelConfig {
        KernelConfig::reference()
    }

    #[test]
    fn sum_all_matches_iter() {
        let t = Tensor::<f32>::arange(10);
        assert_eq!(t.sum_all(&cfg()), 45.0);
        assert_eq!(t.mean_all(&cfg()), 4.5);
    }

    #[test]
    fn sum_axis_rows_and_cols() {
        let t = Tensor::<f32>::arange(6).reshape(&[2, 3]).unwrap();
        let rows = t.sum_axis(1, &cfg()).unwrap();
        assert_eq!(rows.dims(), &[2]);
        assert_eq!(rows.data(), &[3.0, 12.0]);
        let cols = t.sum_axis(0, &cfg()).unwrap();
        assert_eq!(cols.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn mean_axis_values() {
        let t = Tensor::<f32>::arange(6).reshape(&[2, 3]).unwrap();
        let m = t.mean_axis(1, &cfg()).unwrap();
        assert_eq!(m.data(), &[1.0, 4.0]);
    }

    #[test]
    fn max_min_axis() {
        let t = Tensor::<f32>::from_vec(vec![3.0, 1.0, 2.0, -1.0, 5.0, 0.0], &[2, 3]).unwrap();
        assert_eq!(t.max_axis(1).unwrap().data(), &[3.0, 5.0]);
        assert_eq!(t.min_axis(1).unwrap().data(), &[1.0, -1.0]);
        assert_eq!(t.max_axis(0).unwrap().data(), &[3.0, 5.0, 2.0]);
    }

    #[test]
    fn argmax_last_axis_batched() {
        let t = Tensor::<f32>::from_vec(vec![1.0, 9.0, 2.0, 7.0, 0.0, 3.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_last_axis().unwrap(), vec![1, 0]);
    }

    #[test]
    fn axis_out_of_range_errors() {
        let t = Tensor::<f32>::zeros(&[2, 2]);
        assert!(t.sum_axis(2, &cfg()).is_err());
    }

    #[test]
    fn middle_axis_reduction() {
        let t = Tensor::<f32>::arange(24).reshape(&[2, 3, 4]).unwrap();
        let s = t.sum_axis(1, &cfg()).unwrap();
        assert_eq!(s.dims(), &[2, 4]);
        // Element [0,0] = t[0,0,0] + t[0,1,0] + t[0,2,0] = 0 + 4 + 8.
        assert_eq!(s.at(&[0, 0]).unwrap(), 12.0);
        assert_eq!(s.at(&[1, 3]).unwrap(), (15 + 19 + 23) as f32);
    }

    #[test]
    fn accumulation_order_changes_sum_bits() {
        // Ill-conditioned data: different orders round differently.
        let t = Tensor::<f32>::rand_uniform(&[4096], -1e4, 1e4, 11);
        let seq = t.sum_all(&KernelConfig {
            accum: AccumMode::Sequential,
            ..cfg()
        });
        let pair = t.sum_all(&KernelConfig {
            accum: AccumMode::Pairwise,
            ..cfg()
        });
        assert_ne!(seq.to_bits(), pair.to_bits());
    }
}
