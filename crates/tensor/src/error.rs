//! Error types for tensor operations.

use core::fmt;

/// Errors produced by tensor construction and operator kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        got: usize,
    },
    /// Two operand shapes are incompatible for the attempted operation.
    ShapeMismatch {
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
        /// Operation that rejected the shapes.
        op: &'static str,
    },
    /// A dimension index is out of range for the tensor rank.
    AxisOutOfRange {
        /// Offending axis.
        axis: usize,
        /// Tensor rank.
        rank: usize,
    },
    /// An index is out of range for the dimension extent.
    IndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Dimension extent.
        extent: usize,
    },
    /// The operation requires a minimum rank that the tensor lacks.
    RankMismatch {
        /// Required rank (exact or minimum, see `op` context).
        expected: usize,
        /// Actual rank.
        got: usize,
        /// Operation that rejected the rank.
        op: &'static str,
    },
    /// A generic invalid-argument condition with a human-readable reason.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "data length {got} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfRange { index, extent } => {
                write!(f, "index {index} out of range for extent {extent}")
            }
            TensorError::RankMismatch { expected, got, op } => {
                write!(f, "{op}: expected rank {expected}, got {got}")
            }
            TensorError::InvalidArgument(reason) => write!(f, "invalid argument: {reason}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 4,
            got: 3,
        };
        assert_eq!(e.to_string(), "data length 3 does not match shape volume 4");
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            lhs: vec![2, 2],
            rhs: vec![3],
            op: "add",
        };
        assert!(e.to_string().contains("add"));
        assert!(e.to_string().contains("[2, 2]"));
    }

    #[test]
    fn display_axis_out_of_range() {
        let e = TensorError::AxisOutOfRange { axis: 5, rank: 2 };
        assert!(e.to_string().contains("axis 5"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(TensorError::InvalidArgument("x".into()));
        assert!(e.to_string().contains("x"));
    }
}
