//! Int8 quantized GEMM kernel family: per-channel symmetric scales, `i8`
//! packed rhs panels (via [`PackedRhs::pack_with`] — the same packer the
//! `f32` kernels use), and widening `i32`-accumulator micro-kernels with
//! an AVX2 `pmaddwd` fast path.
//!
//! The family lives under the same differential-oracle discipline as the
//! `f32` kernels (see `kernel.rs`): the scalar [`quant_gemm_reference`]
//! stays in-tree permanently and the vector path must be **bit-identical**
//! to it. Unlike floating point, integer multiply-accumulate is exact and
//! wrapping `i32` addition is associative and commutative, so *any*
//! evaluation order — SIMD pair-sums, [`MR`]-row register blocks, row-band
//! threading — reproduces the scalar result bit-for-bit. That makes the
//! quantized contract trivially satisfiable by every device config: a
//! quantized operator is **cross-device exact**, its calibration envelope
//! is all-zero, and a single flipped output bit is an unbounded threshold
//! offense the dispute game localizes for free.
//!
//! **Rounding policy** (explicit, part of the committed numeric contract):
//!
//! * A symmetric scale is `max|x| / 127`, computed in `f64` (`1.0` for an
//!   all-zero tensor). Per-channel scales apply this per weight row.
//! * Quantization is `round(x / scale)` in `f64` — `f64::round` ties away
//!   from zero — clamped to `[-127, 127]` (the symmetric range; `-128` is
//!   never produced).
//! * Dequantization multiplies the exact `i32` accumulator by the `f64`
//!   product of the operand scales, then rounds once to `f32`. Every step
//!   is an IEEE-754-exact elementary operation, so the whole pipeline is
//!   deterministic on every host.
//!
//! The AVX2 path (`_mm256_madd_epi16`) sign-extends two packed panel rows
//! to `i16` pairs and multiply-accumulates them into 8 `i32` lanes per
//! instruction. A deliberate non-choice: `_mm256_maddubs_epi16` would
//! *saturate* its intermediate `i16` sums (`255·127·2 > 32767`), silently
//! breaking bit-identity with the oracle, so the `u8 x i8` form is banned
//! here despite being one instruction shorter.

use crate::kernel::{par_bands, PackedRhs, MR, PANEL};

/// Largest quantized magnitude: the symmetric `i8` range is `[-127, 127]`.
pub const QMAX: i32 = 127;

/// Symmetric quantization scale for a tensor (or channel) whose largest
/// absolute value is `max_abs`: `max_abs / 127` in `f64`, or `1.0` when
/// the data is all zero (every value then quantizes to `0`).
pub fn symmetric_scale(max_abs: f32) -> f64 {
    if max_abs == 0.0 || !max_abs.is_finite() {
        1.0
    } else {
        f64::from(max_abs) / f64::from(QMAX)
    }
}

/// Quantizes one value under the explicit rounding policy:
/// `round(x / scale)` in `f64` (ties away from zero), clamped to
/// `[-127, 127]`.
pub fn quantize_value(x: f32, scale: f64) -> i8 {
    let q = (f64::from(x) / scale).round();
    q.clamp(-f64::from(QMAX), f64::from(QMAX)) as i8
}

/// Dequantizes one widened accumulator value: exact `i32 -> f64`
/// conversion, one `f64` multiply by `scale`, one rounding to `f32`.
pub fn dequantize_value(q: i32, scale: f64) -> f32 {
    (f64::from(q) * scale) as f32
}

/// Largest absolute value of `data` (0 for an empty slice; NaN ignored).
pub fn max_abs(data: &[f32]) -> f32 {
    data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// Per-tensor symmetric quantization: one scale for the whole slice.
pub fn quantize_symmetric(data: &[f32]) -> (Vec<i8>, f64) {
    let scale = symmetric_scale(max_abs(data));
    let q = data.iter().map(|&x| quantize_value(x, scale)).collect();
    (q, scale)
}

/// Per-channel symmetric quantization of a row-major `[rows, cols]`
/// matrix: one scale per row (a `nn.Linear` weight's rows are its output
/// channels).
pub fn quantize_rows_symmetric(data: &[f32], rows: usize, cols: usize) -> (Vec<i8>, Vec<f64>) {
    assert_eq!(data.len(), rows * cols, "matrix length mismatch");
    let mut q = Vec::with_capacity(rows * cols);
    let mut scales = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        let scale = symmetric_scale(max_abs(row));
        q.extend(row.iter().map(|&x| quantize_value(x, scale)));
        scales.push(scale);
    }
    (q, scales)
}

/// The in-tree scalar int8 oracle: `out[i*n + j] = Σ_kk a[i*k + kk] *
/// b[kk*n + j]` with widening `i8 -> i32` products and wrapping `i32`
/// accumulation in ascending `kk` order. Every fast path must be
/// bit-identical to this, permanently.
pub fn quant_gemm_reference(a: &[i8], m: usize, k: usize, b: &[i8], n: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(b.len(), k * n, "rhs length mismatch");
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let av = i32::from(av);
            let b_row = &b[kk * n..(kk + 1) * n];
            for (slot, &bv) in out_row.iter_mut().zip(b_row) {
                *slot = slot.wrapping_add(av.wrapping_mul(i32::from(bv)));
            }
        }
    }
    out
}

/// One [`MR`]x[`PANEL`] int8 register block over an unpacked lhs: `rows`
/// row slices against one packed panel, widening products into wrapping
/// `i32` accumulators (exact, so order-free — but the scalar loop still
/// walks `kk` ascending for cache behavior).
fn quant_mr_tile_scalar(a_rows: &[&[i8]], panel: &[i8], k: usize, acc: &mut [[i32; PANEL]; MR]) {
    for kk in 0..k {
        let b_row = &panel[kk * PANEL..(kk + 1) * PANEL];
        for (r, a_row) in a_rows.iter().enumerate() {
            let av = i32::from(a_row[kk]);
            for (lane, &bv) in acc[r].iter_mut().zip(b_row) {
                *lane = lane.wrapping_add(av.wrapping_mul(i32::from(bv)));
            }
        }
    }
}

/// AVX2 int8 micro-kernel: sign-extend + interleave two panel rows into
/// `(row0_j, row1_j)` `i16` pairs, then one `pmaddwd` per output row folds
/// both `k` steps into the 8 `i32` accumulator lanes.
#[cfg(target_arch = "x86_64")]
mod x86q {
    use super::{MR, PANEL};
    use core::arch::x86_64::{
        _mm256_add_epi32, _mm256_cvtepi8_epi16, _mm256_loadu_si256, _mm256_madd_epi16,
        _mm256_permute4x64_epi64, _mm256_set1_epi32, _mm256_setzero_si256, _mm256_shuffle_epi8,
        _mm256_storeu_si256, _mm_loadu_si128,
    };
    use std::sync::OnceLock;

    /// Runtime AVX2 detection, cached after the first call.
    pub(super) fn have_avx2() -> bool {
        static HAVE: OnceLock<bool> = OnceLock::new();
        *HAVE.get_or_init(|| is_x86_feature_detected!("avx2"))
    }

    /// Byte shuffle interleaving the two sign-extended panel rows
    /// (after `permute4x64` has paired 64-bit quads) into
    /// `(row0_j, row1_j)` `i16` pairs per 32-bit lane, both 128-bit lanes.
    const INTERLEAVE: [i8; 32] = [
        0, 1, 8, 9, 2, 3, 10, 11, 4, 5, 12, 13, 6, 7, 14, 15, //
        0, 1, 8, 9, 2, 3, 10, 11, 4, 5, 12, 13, 6, 7, 14, 15,
    ];

    /// Packs one lhs row into broadcast-ready `i16` pairs: lane `kp` holds
    /// `(a[2kp+1] << 16) | a[2kp]` as an `i32`. Built once per row band and
    /// reused across every rhs panel — the scalar pair assembly used to run
    /// inside the panel loop and dominated the kernel's uop budget.
    pub(super) fn pack_pairs(a_row: &[i8], pairs: &mut [i32]) {
        for (kp, slot) in pairs.iter_mut().enumerate() {
            let a0 = a_row[2 * kp] as i16 as u16 as u32;
            let a1 = a_row[2 * kp + 1] as i16 as u16 as u32;
            *slot = ((a1 << 16) | a0) as i32;
        }
    }

    /// [`MR`]x[`PANEL`] int8 register block: `pmaddwd` pair-sums two `k`
    /// steps per instruction; wrapping `i32` addition makes any order
    /// bit-identical to the scalar oracle. The `i16` pair products are
    /// bounded by `2 · 127² = 32258`, so the `pmaddwd` intermediate can
    /// never wrap, let alone saturate.
    ///
    /// `pairs` is the row-major `rows x (k / 2)` output of [`pack_pairs`];
    /// `_mm256_set1_epi32` of a slice element compiles to a single
    /// `vpbroadcastd` from memory, so the inner loop is one broadcast, one
    /// `pmaddwd` and one add per row per pair of `k` steps.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (checked by [`have_avx2`]), `panel.len() >= k * PANEL`,
    /// `pairs.len() >= rows * (k / 2)` and every row slice at least `k`
    /// long.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quant_mr_tile(
        a_rows: &[&[i8]],
        pairs: &[i32],
        panel: &[i8],
        k: usize,
        acc_out: &mut [[i32; PANEL]; MR],
    ) {
        debug_assert!(a_rows.len() <= MR);
        debug_assert!(panel.len() >= k * PANEL);
        let kpairs = k / 2;
        debug_assert!(pairs.len() >= a_rows.len() * kpairs);
        let mask = _mm256_loadu_si256(INTERLEAVE.as_ptr().cast());
        let mut acc = [_mm256_setzero_si256(); MR];
        let p = panel.as_ptr();
        for kp in 0..kpairs {
            let kk = 2 * kp;
            // 16 bytes = panel rows kk and kk+1 -> 16 i16 lanes
            // [r0_0..7 | r1_0..7].
            let v16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(p.add(kk * PANEL).cast()));
            // Quads [r0_0..3, r1_0..3 | r0_4..7, r1_4..7], then interleave
            // words within each 128-bit lane: i32 lane j = (r0_j, r1_j).
            let vp = _mm256_permute4x64_epi64(v16, 0b1101_1000);
            let vi = _mm256_shuffle_epi8(vp, mask);
            for (r, _) in a_rows.iter().enumerate() {
                let pair = *pairs.get_unchecked(r * kpairs + kp);
                acc[r] =
                    _mm256_add_epi32(acc[r], _mm256_madd_epi16(vi, _mm256_set1_epi32(pair)));
            }
        }
        for (r, a_row) in a_rows.iter().enumerate() {
            _mm256_storeu_si256(acc_out[r].as_mut_ptr().cast(), acc[r]);
            if k % 2 == 1 {
                // Odd-k tail: one scalar widening step per lane.
                let kk = k - 1;
                let av = i32::from(a_row[kk]);
                for (j, lane) in acc_out[r].iter_mut().enumerate() {
                    *lane = lane.wrapping_add(av.wrapping_mul(i32::from(panel[kk * PANEL + j])));
                }
            }
        }
    }
}

/// Widening int8 GEMM into a preallocated `i32` buffer, bit-identical to
/// [`quant_gemm_reference`] at any thread count (integer accumulation is
/// exact, so this is a theorem, not a convention — and it is proptested
/// anyway in `tests/tests/quant_equiv.rs`).
///
/// # Panics
///
/// Panics if `a` is not `m * rhs.k()` long or `out` is not
/// `m * rhs.n()` long.
pub fn quant_gemm_into(a: &[i8], m: usize, rhs: &PackedRhs<i8>, out: &mut [i32], threads: usize) {
    let (k, n) = (rhs.k(), rhs.n());
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(out.len(), m * n, "out length mismatch");
    if n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0);
        return;
    }
    let panel_len = k * PANEL;
    #[cfg(target_arch = "x86_64")]
    let fast = x86q::have_avx2();
    #[cfg(not(target_arch = "x86_64"))]
    let fast = false;
    par_bands(out, MR * n, threads, |block0, band| {
        // Broadcast-ready lhs pairs, rebuilt per MR-row block and shared
        // across every rhs panel (row-major `rows x (k / 2)`).
        #[cfg(target_arch = "x86_64")]
        let mut pairs: Vec<i32> = vec![0; if fast { MR * (k / 2) } else { 0 }];
        for (bi, chunk) in band.chunks_mut(MR * n).enumerate() {
            let row0 = (block0 + bi) * MR;
            let rows = chunk.len() / n;
            let a_rows: Vec<&[i8]> = (0..rows)
                .map(|r| &a[(row0 + r) * k..(row0 + r + 1) * k])
                .collect();
            #[cfg(target_arch = "x86_64")]
            if fast {
                for (r, a_row) in a_rows.iter().enumerate() {
                    x86q::pack_pairs(a_row, &mut pairs[r * (k / 2)..(r + 1) * (k / 2)]);
                }
            }
            for (p, panel) in rhs.panels().chunks(panel_len).enumerate() {
                let mut acc = [[0i32; PANEL]; MR];
                if fast {
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: AVX2 runtime-detected; panel is k * PANEL
                    // long, every row slice is exactly k long, and pairs
                    // holds MR * (k / 2) packed lhs pairs.
                    unsafe {
                        x86q::quant_mr_tile(&a_rows, &pairs, panel, k, &mut acc);
                    }
                } else {
                    quant_mr_tile_scalar(&a_rows, panel, k, &mut acc);
                }
                let col0 = p * PANEL;
                let width = PANEL.min(n - col0);
                for (r, acc_row) in acc.iter().enumerate().take(rows) {
                    chunk[r * n + col0..r * n + col0 + width]
                        .copy_from_slice(&acc_row[..width]);
                }
            }
        }
    });
}

/// Allocating convenience wrapper around [`quant_gemm_into`].
pub fn quant_gemm(a: &[i8], m: usize, rhs: &PackedRhs<i8>, threads: usize) -> Vec<i32> {
    let mut out = vec![0i32; m * rhs.n()];
    quant_gemm_into(a, m, rhs, &mut out, threads);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_i8(n: usize, seed: u64) -> Vec<i8> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state % 255) as i64 - 127) as i8
            })
            .collect()
    }

    #[test]
    fn fast_gemm_matches_oracle_over_ragged_shapes() {
        for (m, k, n) in [
            (1, 1, 1),
            (3, 7, 5),
            (4, 8, 8),
            (5, 9, 17),
            (13, 33, 19),
            (16, 64, 24),
        ] {
            let a = pseudo_i8(m * k, 11);
            let b = pseudo_i8(k * n, 23);
            let rhs = PackedRhs::from_row_major(&b, k, n);
            let oracle = quant_gemm_reference(&a, m, k, &b, n);
            for threads in [1usize, 2, 5] {
                assert_eq!(
                    quant_gemm(&a, m, &rhs, threads),
                    oracle,
                    "m={m} k={k} n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn degenerate_shapes() {
        let rhs = PackedRhs::from_row_major(&[], 0, 4);
        assert_eq!(quant_gemm(&[], 3, &rhs, 2), vec![0; 12]);
        let rhs = PackedRhs::from_row_major(&[], 5, 0);
        assert!(quant_gemm(&[1i8; 10], 2, &rhs, 2).is_empty());
    }

    #[test]
    fn rounding_policy_is_ties_away_and_clamped() {
        // scale 1.0: x = 2.5 rounds to 3, x = -2.5 to -3 (away from zero).
        assert_eq!(quantize_value(2.5, 1.0), 3);
        assert_eq!(quantize_value(-2.5, 1.0), -3);
        // Clamped symmetric range: -128 is never produced.
        assert_eq!(quantize_value(-1e9, 1.0), -127);
        assert_eq!(quantize_value(1e9, 1.0), 127);
        // All-zero data gets the 1.0 fallback scale.
        let (q, scale) = quantize_symmetric(&[0.0, 0.0]);
        assert_eq!((q, scale), (vec![0, 0], 1.0));
    }

    #[test]
    fn per_channel_scales_cover_each_row() {
        let data = [1.0f32, -2.0, 0.5, 127.0, -254.0, 63.5];
        let (q, scales) = quantize_rows_symmetric(&data, 2, 3);
        assert_eq!(scales.len(), 2);
        // Row maxima 2.0 and 254.0 -> scales 2/127 and 2.
        assert_eq!(scales[0], 2.0 / 127.0);
        assert_eq!(scales[1], 2.0);
        assert_eq!(q, vec![64, -127, 32, 64, -127, 32]);
    }

    #[test]
    fn roundtrip_error_is_within_half_a_step() {
        let data: Vec<f32> = (0..1000).map(|i| ((i * 37) % 613) as f32 / 7.0 - 40.0).collect();
        let (q, scale) = quantize_symmetric(&data);
        for (&x, &qi) in data.iter().zip(&q) {
            let back = dequantize_value(i32::from(qi), scale);
            assert!(
                f64::from((back - x).abs()) <= scale / 2.0 + 1e-6,
                "x={x} back={back} scale={scale}"
            );
        }
    }
}
