//! Scalar element traits: the minimal [`Scalar`] base implemented by the
//! packable storage types (`f32`, `f64`, `i8`, `i32`) and the full
//! floating-point [`Element`] interface implemented by `f32` and `f64`.

use core::fmt::Debug;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Minimal scalar interface the GEMM packing plumbing needs: a copyable
/// value with an additive identity for zero-padding panels.
///
/// [`Element`] extends this with the full floating-point surface; the
/// integer types (`i8`, `i32`) of the quantized kernel family implement
/// only this base, which is what lets `PackedRhs::pack_with` pack `i8`
/// panels with the exact code path the `f32` kernels use.
pub trait Scalar: Copy + Debug + PartialEq + Send + Sync + 'static {
    /// Additive identity (also the zero-padding value of packed panels).
    const ZERO: Self;
}

impl Scalar for i8 {
    const ZERO: Self = 0;
}

impl Scalar for i32 {
    const ZERO: Self = 0;
}

/// Floating-point scalar usable as a tensor element.
///
/// The trait is sealed by construction (only `f32` and `f64` implement it)
/// and exposes exactly the operations the operator kernels and the
/// error-bound templates require: IEEE-754 arithmetic, fused multiply-add,
/// a handful of transcendental functions, and loss-free conversion through
/// `f64` for bound arithmetic.
pub trait Element:
    Scalar
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + Sum
{
    /// Multiplicative identity.
    const ONE: Self;
    /// Unit roundoff `u` (half the machine epsilon) of the format.
    const UNIT_ROUNDOFF: f64;
    /// Short dtype tag used in canonical serialization (`"f32"`/`"f64"`).
    const DTYPE: &'static str;

    /// Converts from `f64`, rounding to nearest even.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` exactly (both formats embed losslessly).
    fn to_f64(self) -> f64;
    /// Fused multiply-add `self * a + b` with a single rounding.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root (correctly rounded per IEEE-754).
    fn sqrt(self) -> Self;
    /// Natural exponential (reference libm implementation).
    fn exp(self) -> Self;
    /// Natural logarithm (reference libm implementation).
    fn ln(self) -> Self;
    /// Hyperbolic tangent (reference libm implementation).
    fn tanh(self) -> Self;
    /// Sine (reference libm implementation).
    fn sin(self) -> Self;
    /// Cosine (reference libm implementation).
    fn cos(self) -> Self;
    /// Raises to a scalar power.
    fn powf(self, p: Self) -> Self;
    /// Larger of two values (NaN-propagating like `f32::max` is not; this
    /// follows `max(x, NaN) = x` semantics of the std library).
    fn maximum(self, other: Self) -> Self;
    /// Smaller of two values.
    fn minimum(self, other: Self) -> Self;
    /// True if the value is finite.
    fn is_finite(self) -> bool;
    /// True if the value is NaN.
    fn is_nan(self) -> bool;
    /// Raw little-endian bytes of the value (canonical serialization).
    fn to_le_bytes_vec(self) -> Vec<u8>;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
}

impl Element for f32 {
    const ONE: Self = 1.0;
    // 2^-24 for binary32.
    const UNIT_ROUNDOFF: f64 = 5.960_464_477_539_063e-8;
    const DTYPE: &'static str = "f32";

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f32::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f32::ln(self)
    }
    #[inline]
    fn tanh(self) -> Self {
        f32::tanh(self)
    }
    #[inline]
    fn sin(self) -> Self {
        f32::sin(self)
    }
    #[inline]
    fn cos(self) -> Self {
        f32::cos(self)
    }
    #[inline]
    fn powf(self, p: Self) -> Self {
        f32::powf(self, p)
    }
    #[inline]
    fn maximum(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn minimum(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
    #[inline]
    fn to_le_bytes_vec(self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
}

impl Element for f64 {
    const ONE: Self = 1.0;
    // 2^-53 for binary64.
    const UNIT_ROUNDOFF: f64 = 1.110_223_024_625_156_5e-16;
    const DTYPE: &'static str = "f64";

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f64::ln(self)
    }
    #[inline]
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    #[inline]
    fn sin(self) -> Self {
        f64::sin(self)
    }
    #[inline]
    fn cos(self) -> Self {
        f64::cos(self)
    }
    #[inline]
    fn powf(self, p: Self) -> Self {
        f64::powf(self, p)
    }
    #[inline]
    fn maximum(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn minimum(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    #[inline]
    fn to_le_bytes_vec(self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundoff_matches_epsilon() {
        assert_eq!(<f32 as Element>::UNIT_ROUNDOFF, (f32::EPSILON as f64) / 2.0);
        assert_eq!(<f64 as Element>::UNIT_ROUNDOFF, f64::EPSILON / 2.0);
    }

    #[test]
    fn fma_single_rounding_differs_from_two() {
        // (1+eps)(1-eps) = 1 - eps^2 rounds to exactly 1.0 in f32, so the
        // unfused version yields 0 while the fused version keeps -eps^2.
        let a = 1.0f32 + f32::EPSILON;
        let b = 1.0f32 - f32::EPSILON;
        let c = -1.0f32;
        let fused = Element::mul_add(a, b, c);
        let unfused = a * b + c;
        assert_eq!(unfused, 0.0);
        assert_ne!(fused, unfused);
    }

    #[test]
    fn conversions_roundtrip() {
        let x = 1.234_567_9f32;
        assert_eq!(<f32 as Element>::from_f64(x.to_f64()), x);
        let y = 1.234_567_890_123_4f64;
        assert_eq!(<f64 as Element>::from_f64(y), y);
    }

    #[test]
    fn dtype_tags() {
        assert_eq!(<f32 as Element>::DTYPE, "f32");
        assert_eq!(<f64 as Element>::DTYPE, "f64");
    }

    #[test]
    fn le_bytes_lengths() {
        assert_eq!(1.0f32.to_le_bytes_vec().len(), 4);
        assert_eq!(1.0f64.to_le_bytes_vec().len(), 8);
    }
}
