//! The dense, row-major [`Tensor`] type and structural operations.

use std::sync::Arc;

use crate::element::Element;
use crate::error::TensorError;
use crate::shape::{IndexIter, Shape};
use crate::Result;

use rand::Rng;
use rand::SeedableRng;

/// A dense row-major tensor over an [`Element`] scalar type.
///
/// Storage is always contiguous; structural transforms (transpose, permute,
/// slice, concatenate) materialize their results. This keeps every kernel's
/// memory-access order — and therefore its IEEE-754 rounding order — fully
/// explicit, which is a prerequisite for the bound templates in
/// `tao-bounds`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T: Element> {
    // Shared, copy-on-write storage: cloning a tensor is a refcount bump,
    // and structural reshapes share the buffer outright. Mutation goes
    // through `data_mut`, which unshares lazily (`Arc::make_mut`).
    data: Arc<Vec<T>>,
    shape: Shape,
}

impl<T: Element> Tensor<T> {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not
    /// equal the shape volume.
    pub fn from_vec(data: Vec<T>, shape: &[usize]) -> Result<Self> {
        let shape = Shape::new(shape);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                got: data.len(),
            });
        }
        Ok(Tensor {
            data: Arc::new(data),
            shape,
        })
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(v: T) -> Self {
        Tensor {
            data: Arc::new(vec![v]),
            shape: Shape::new(&[]),
        }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        Tensor {
            data: Arc::new(vec![T::ZERO; shape.volume()]),
            shape,
        }
    }

    /// Creates a tensor of zeros with the same shape as `other`.
    pub fn zeros_like(other: &Tensor<T>) -> Self {
        Tensor {
            data: Arc::new(vec![T::ZERO; other.len()]),
            shape: other.shape.clone(),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, T::ONE)
    }

    /// Creates a tensor filled with a constant.
    pub fn full(shape: &[usize], v: T) -> Self {
        let shape = Shape::new(shape);
        Tensor {
            data: Arc::new(vec![v; shape.volume()]),
            shape,
        }
    }

    /// Creates the `n×n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut data = vec![T::ZERO; n * n];
        for i in 0..n {
            data[i * n + i] = T::ONE;
        }
        Tensor {
            data: Arc::new(data),
            shape: Shape::new(&[n, n]),
        }
    }

    /// Creates `[0, 1, ..., n-1]` as a 1-D tensor.
    pub fn arange(n: usize) -> Self {
        let data = (0..n).map(|i| T::from_f64(i as f64)).collect();
        Tensor {
            data: Arc::new(data),
            shape: Shape::new(&[n]),
        }
    }

    /// Creates a tensor of standard-normal samples from a fixed seed.
    ///
    /// Uses a Box–Muller transform over a ChaCha8 stream so the draw is
    /// reproducible across platforms (no dependence on platform libm for the
    /// stream itself).
    pub fn randn(shape: &[usize], seed: u64) -> Self {
        let shape = Shape::new(shape);
        let n = shape.volume();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * core::f64::consts::PI * u2;
            data.push(T::from_f64(r * theta.cos()));
            if data.len() < n {
                data.push(T::from_f64(r * theta.sin()));
            }
        }
        Tensor {
            data: Arc::new(data),
            shape,
        }
    }

    /// Creates a tensor of uniform samples in `[lo, hi)` from a fixed seed.
    pub fn rand_uniform(shape: &[usize], lo: f64, hi: f64, seed: u64) -> Self {
        let shape = Shape::new(shape);
        let n = shape.volume();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let data = (0..n).map(|_| T::from_f64(rng.gen_range(lo..hi))).collect();
        Tensor {
            data: Arc::new(data),
            shape,
        }
    }

    /// Returns the underlying data slice.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Returns the underlying data slice mutably, unsharing the buffer
    /// first when it is referenced by other tensors (copy-on-write).
    pub fn data_mut(&mut self) -> &mut [T] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consumes the tensor, returning its data vector (cloned only when
    /// the buffer is shared with another tensor).
    pub fn into_data(self) -> Vec<T> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Consumes the tensor, returning its data vector only when no other
    /// tensor shares the buffer — the executor's pool-reclaim hook.
    pub fn into_unique_data(self) -> Option<Vec<T>> {
        Arc::try_unwrap(self.data).ok()
    }

    /// True when both tensors share one underlying buffer (an `Arc`-shared
    /// parameter or a structural reshape, never a deep copy).
    pub fn shares_buffer(&self, other: &Tensor<T>) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Opaque identity of the underlying buffer, stable while the buffer
    /// lives (used by the executor's resident-set accounting).
    pub fn buffer_id(&self) -> usize {
        Arc::as_ptr(&self.data) as usize
    }

    /// Returns the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is out of range.
    pub fn at(&self, index: &[usize]) -> Result<T> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index is out of range.
    pub fn set(&mut self, index: &[usize], v: T) -> Result<()> {
        let off = self.shape.offset(index)?;
        Arc::make_mut(&mut self.data)[off] = v;
        Ok(())
    }

    /// Converts every element through `f64` into another element type.
    pub fn cast<U: Element>(&self) -> Tensor<U> {
        Tensor {
            data: Arc::new(self.data.iter().map(|&x| U::from_f64(x.to_f64())).collect()),
            shape: self.shape.clone(),
        }
    }

    /// Applies a unary function to every element, yielding a new tensor.
    pub fn map(&self, f: impl Fn(T) -> T) -> Tensor<T> {
        Tensor {
            data: Arc::new(self.data.iter().map(|&x| f(x)).collect()),
            shape: self.shape.clone(),
        }
    }

    /// [`map`](Self::map) into a recycled buffer: identical output, but the
    /// result reuses `buf`'s allocation when its capacity suffices.
    pub fn map_with_buf(&self, mut buf: Vec<T>, f: impl Fn(T) -> T) -> Tensor<T> {
        buf.clear();
        buf.extend(self.data.iter().map(|&x| f(x)));
        Tensor {
            data: Arc::new(buf),
            shape: self.shape.clone(),
        }
    }


    /// Reshapes to a new shape of the same volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor<T>> {
        let new_shape = Shape::new(shape);
        if new_shape.volume() != self.len() {
            return Err(TensorError::LengthMismatch {
                expected: new_shape.volume(),
                got: self.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: new_shape,
        })
    }

    /// Flattens to 1-D.
    pub fn flatten(&self) -> Tensor<T> {
        Tensor {
            data: self.data.clone(),
            shape: Shape::new(&[self.len()]),
        }
    }

    /// Swaps two axes, materializing the result.
    ///
    /// # Errors
    ///
    /// Returns an error if either axis is out of range.
    pub fn transpose(&self, a: usize, b: usize) -> Result<Tensor<T>> {
        let rank = self.rank();
        if a >= rank || b >= rank {
            return Err(TensorError::AxisOutOfRange {
                axis: a.max(b),
                rank,
            });
        }
        let mut perm: Vec<usize> = (0..rank).collect();
        perm.swap(a, b);
        self.permute(&perm)
    }

    /// Permutes axes according to `perm`, materializing the result.
    ///
    /// # Errors
    ///
    /// Returns an error if `perm` is not a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor<T>> {
        let rank = self.rank();
        if perm.len() != rank {
            return Err(TensorError::RankMismatch {
                expected: rank,
                got: perm.len(),
                op: "permute",
            });
        }
        let mut seen = vec![false; rank];
        for &p in perm {
            if p >= rank || seen[p] {
                return Err(TensorError::InvalidArgument(format!(
                    "permute: {perm:?} is not a permutation of 0..{rank}"
                )));
            }
            seen[p] = true;
        }
        let out_dims: Vec<usize> = perm.iter().map(|&p| self.shape.0[p]).collect();
        let out_shape = Shape::new(&out_dims);
        let in_strides = self.shape.strides();
        let mut out = Vec::with_capacity(self.len());
        for idx in IndexIter::new(&out_shape) {
            let mut off = 0;
            for (o_axis, &p) in perm.iter().enumerate() {
                off += idx[o_axis] * in_strides[p];
            }
            out.push(self.data[off]);
        }
        Ok(Tensor {
            data: Arc::new(out),
            shape: out_shape,
        })
    }

    /// Slices `[start, end)` along an axis, materializing the result.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range axis or slice bounds.
    pub fn slice(&self, axis: usize, start: usize, end: usize) -> Result<Tensor<T>> {
        let extent = self.shape.dim(axis)?;
        if start > end || end > extent {
            return Err(TensorError::InvalidArgument(format!(
                "slice: bounds [{start}, {end}) invalid for extent {extent}"
            )));
        }
        let mut out_dims = self.shape.0.clone();
        out_dims[axis] = end - start;
        let out_shape = Shape::new(&out_dims);
        let in_strides = self.shape.strides();
        let mut out = Vec::with_capacity(out_shape.volume());
        for mut idx in IndexIter::new(&out_shape) {
            idx[axis] += start;
            let mut off = 0;
            for (a, &i) in idx.iter().enumerate() {
                off += i * in_strides[a];
            }
            out.push(self.data[off]);
        }
        Ok(Tensor {
            data: Arc::new(out),
            shape: out_shape,
        })
    }

    /// Narrow view returning the `i`-th length-1 slice along `axis`, with
    /// the axis removed (like `select` in PyTorch).
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range axis or index.
    pub fn select(&self, axis: usize, i: usize) -> Result<Tensor<T>> {
        let sliced = self.slice(axis, i, i + 1)?;
        let mut dims = sliced.shape.0.clone();
        dims.remove(axis);
        sliced.reshape(&dims)
    }

    /// Concatenates tensors along an axis, materializing the result.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty or shapes disagree off-axis.
    pub fn cat(tensors: &[&Tensor<T>], axis: usize) -> Result<Tensor<T>> {
        let first = tensors
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("cat: empty tensor list".into()))?;
        let rank = first.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let mut total = 0;
        for t in tensors {
            if t.rank() != rank {
                return Err(TensorError::RankMismatch {
                    expected: rank,
                    got: t.rank(),
                    op: "cat",
                });
            }
            for a in 0..rank {
                if a != axis && t.shape.0[a] != first.shape.0[a] {
                    return Err(TensorError::ShapeMismatch {
                        lhs: first.shape.0.clone(),
                        rhs: t.shape.0.clone(),
                        op: "cat",
                    });
                }
            }
            total += t.shape.0[axis];
        }
        let mut out_dims = first.shape.0.clone();
        out_dims[axis] = total;
        let out_shape = Shape::new(&out_dims);
        let outer: usize = first.shape.0[..axis].iter().product();
        let inner: usize = first.shape.0[axis + 1..].iter().product();
        let mut out = Vec::with_capacity(out_shape.volume());
        for o in 0..outer {
            for t in tensors {
                let ax = t.shape.0[axis];
                let base = o * ax * inner;
                out.extend_from_slice(&t.data[base..base + ax * inner]);
            }
        }
        Ok(Tensor {
            data: Arc::new(out),
            shape: out_shape,
        })
    }

    /// Stacks tensors along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty or shapes disagree.
    pub fn stack(tensors: &[&Tensor<T>]) -> Result<Tensor<T>> {
        let first = tensors
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("stack: empty tensor list".into()))?;
        let mut out = Vec::with_capacity(first.len() * tensors.len());
        for t in tensors {
            if t.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape.0.clone(),
                    rhs: t.shape.0.clone(),
                    op: "stack",
                });
            }
            out.extend_from_slice(&t.data);
        }
        let mut dims = vec![tensors.len()];
        dims.extend_from_slice(&first.shape.0);
        Ok(Tensor {
            data: Arc::new(out),
            shape: Shape::new(&dims),
        })
    }

    /// Gathers rows of `self` (treated as `[n, ...]`) by index along axis 0.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors or out-of-range indices.
    pub fn index_select0(&self, indices: &[usize]) -> Result<Tensor<T>> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                got: 0,
                op: "index_select0",
            });
        }
        let n = self.shape.0[0];
        let row: usize = self.shape.0[1..].iter().product();
        let mut out = Vec::with_capacity(indices.len() * row);
        for &i in indices {
            if i >= n {
                return Err(TensorError::IndexOutOfRange {
                    index: i,
                    extent: n,
                });
            }
            out.extend_from_slice(&self.data[i * row..(i + 1) * row]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.shape.0[1..]);
        Ok(Tensor {
            data: Arc::new(out),
            shape: Shape::new(&dims),
        })
    }

    /// Broadcasts this tensor to a target shape, materializing the result.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if not broadcastable.
    pub fn broadcast_to(&self, target: &Shape) -> Result<Tensor<T>> {
        if !self.shape.broadcastable_to(target) {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.0.clone(),
                rhs: target.0.clone(),
                op: "broadcast_to",
            });
        }
        if &self.shape == target {
            return Ok(self.clone());
        }
        let pad = target.rank() - self.rank();
        let in_strides = self.shape.strides();
        let mut out = Vec::with_capacity(target.volume());
        for idx in IndexIter::new(target) {
            let mut off = 0;
            for (a, &stride) in in_strides.iter().enumerate() {
                let i = if self.shape.0[a] == 1 {
                    0
                } else {
                    idx[a + pad]
                };
                off += i * stride;
            }
            out.push(self.data[off]);
        }
        Ok(Tensor {
            data: Arc::new(out),
            shape: target.clone(),
        })
    }

    /// Maximum element and its flat index; `None` for empty tensors.
    pub fn argmax(&self) -> Option<(usize, T)> {
        let mut best: Option<(usize, T)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            match best {
                None => best = Some((i, v)),
                Some((_, bv)) if v > bv => best = Some((i, v)),
                _ => {}
            }
        }
        best
    }

    /// Largest absolute element (`0` for empty tensors).
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .fold(0.0f64, |m, &x| m.max(x.to_f64().abs()))
    }

    /// Returns true if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::<f32>::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::<f32>::zeros(&[2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::<f32>::ones(&[3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::<f32>::full(&[2], 7.0).data(), &[7.0, 7.0]);
        assert_eq!(Tensor::<f32>::eye(2).data(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Tensor::<f32>::arange(3).data(), &[0.0, 1.0, 2.0]);
        assert_eq!(Tensor::<f32>::scalar(5.0).rank(), 0);
    }

    #[test]
    fn randn_is_seeded_and_plausible() {
        let a = Tensor::<f32>::randn(&[1000], 42);
        let b = Tensor::<f32>::randn(&[1000], 42);
        let c = Tensor::<f32>::randn(&[1000], 43);
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
        let mean: f64 = a.data().iter().map(|&x| x as f64).sum::<f64>() / 1000.0;
        assert!(mean.abs() < 0.2, "mean {mean}");
        let var: f64 = a
            .data()
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / 1000.0;
        assert!((var - 1.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn rand_uniform_in_range() {
        let t = Tensor::<f32>::rand_uniform(&[100], -2.0, 3.0, 7);
        assert!(t.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn at_and_set() {
        let mut t = Tensor::<f32>::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 9.0);
        assert!(t.at(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_and_flatten() {
        let t = Tensor::<f32>::arange(6).reshape(&[2, 3]).unwrap();
        assert_eq!(t.dims(), &[2, 3]);
        assert!(t.reshape(&[4]).is_err());
        assert_eq!(t.flatten().dims(), &[6]);
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose(0, 1).unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn permute_3d() {
        let t = Tensor::<f32>::arange(24).reshape(&[2, 3, 4]).unwrap();
        let p = t.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]).unwrap(), t.at(&[0, 2, 1]).unwrap());
        assert!(t.permute(&[0, 0, 1]).is_err());
        assert!(t.permute(&[0, 1]).is_err());
    }

    #[test]
    fn slice_and_select() {
        let t = Tensor::<f32>::arange(12).reshape(&[3, 4]).unwrap();
        let s = t.slice(0, 1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 4]);
        assert_eq!(s.at(&[0, 0]).unwrap(), 4.0);
        let r = t.select(0, 2).unwrap();
        assert_eq!(r.dims(), &[4]);
        assert_eq!(r.data(), &[8.0, 9.0, 10.0, 11.0]);
        assert!(t.slice(0, 2, 5).is_err());
        assert!(t.slice(0, 3, 2).is_err());
    }

    #[test]
    fn cat_along_axes() {
        let a = Tensor::<f32>::ones(&[2, 2]);
        let b = Tensor::<f32>::zeros(&[2, 2]);
        let c0 = Tensor::cat(&[&a, &b], 0).unwrap();
        assert_eq!(c0.dims(), &[4, 2]);
        let c1 = Tensor::cat(&[&a, &b], 1).unwrap();
        assert_eq!(c1.dims(), &[2, 4]);
        assert_eq!(c1.data(), &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
        let bad = Tensor::<f32>::zeros(&[3, 3]);
        assert!(Tensor::cat(&[&a, &bad], 0).is_err());
        assert!(Tensor::<f32>::cat(&[], 0).is_err());
    }

    #[test]
    fn stack_adds_axis() {
        let a = Tensor::<f32>::ones(&[2]);
        let b = Tensor::<f32>::zeros(&[2]);
        let s = Tensor::stack(&[&a, &b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn index_select0_gathers_rows() {
        let t = Tensor::<f32>::arange(6).reshape(&[3, 2]).unwrap();
        let g = t.index_select0(&[2, 0]).unwrap();
        assert_eq!(g.dims(), &[2, 2]);
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert!(t.index_select0(&[3]).is_err());
    }

    #[test]
    fn broadcast_to_materializes() {
        let t = Tensor::<f32>::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        let b = t.broadcast_to(&Shape::new(&[2, 3])).unwrap();
        assert_eq!(b.data(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        let v = Tensor::<f32>::from_vec(vec![5.0], &[1]).unwrap();
        let bv = v.broadcast_to(&Shape::new(&[2, 2])).unwrap();
        assert_eq!(bv.data(), &[5.0; 4]);
        assert!(Tensor::<f32>::zeros(&[3])
            .broadcast_to(&Shape::new(&[2]))
            .is_err());
    }

    #[test]
    fn argmax_and_max_abs() {
        let t = Tensor::<f32>::from_vec(vec![1.0, -5.0, 3.0], &[3]).unwrap();
        assert_eq!(t.argmax().unwrap().0, 2);
        assert_eq!(t.max_abs(), 5.0);
        assert!(Tensor::<f32>::zeros(&[0]).argmax().is_none());
    }

    #[test]
    fn cast_roundtrip() {
        let t = Tensor::<f32>::from_vec(vec![1.5, -2.25], &[2]).unwrap();
        let d: Tensor<f64> = t.cast();
        assert_eq!(d.data(), &[1.5, -2.25]);
        let back: Tensor<f32> = d.cast();
        assert_eq!(back.data(), t.data());
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::<f32>::ones(&[3]);
        assert!(t.all_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.all_finite());
    }
}
