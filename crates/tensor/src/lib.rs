//! # tao-tensor
//!
//! A from-scratch dense tensor library underpinning the TAO verification
//! stack.
//!
//! The library is deliberately small but complete: row-major contiguous
//! tensors over [`f32`]/[`f64`], broadcasting, the full set of operator
//! kernels the TAO paper instruments (elementwise arithmetic, activations,
//! reductions, matrix multiplication, convolution, normalization, pooling,
//! embedding and data movement), and — the part that makes tolerance-aware
//! verification meaningful — *pluggable IEEE-754 accumulation order*.
//!
//! Floating-point addition is not associative, so the order in which a
//! reduction is evaluated changes the rounding of the result. Real GPU
//! stacks reorder reductions per device generation, kernel choice and grid
//! shape; this crate reproduces the identical mechanism on the CPU through
//! [`AccumMode`] (sequential, pairwise tree, blocked) together with fused
//! multiply-add contraction and alternative transcendental-intrinsic
//! implementations selected by [`KernelConfig`].
//!
//! The hot paths (matmul, linear, im2col conv2d, lane-wise
//! softmax/normalization and axis reductions) run on the cache-blocked,
//! register-tiled, row-band-threaded engine in [`kernel`], which is
//! **bit-identical** to the scalar oracle kernels (`matmul_reference` and
//! friends) for every accumulation mode and FMA setting — the committed
//! numeric contract the TAO protocol depends on. The differential harness
//! in `tests/tests/kernel_equiv.rs` enforces that equivalence.
//!
//! # Examples
//!
//! ```
//! use tao_tensor::{KernelConfig, Tensor};
//!
//! let a = Tensor::<f32>::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::<f32>::eye(2);
//! let c = a.matmul(&b, &KernelConfig::reference()).unwrap();
//! assert_eq!(c.data(), a.data());
//! ```

pub mod accum;
pub mod element;
pub mod error;
pub mod kernel;
pub mod math;
pub mod ops;
pub mod quant;
pub mod shape;
pub mod tensor;

pub use accum::{AccumMode, KernelConfig};
pub use element::{Element, Scalar};
pub use error::TensorError;
pub use math::{MathElement, MathLib};
pub use ops::conv::Conv2dParams;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, TensorError>;
