//! Transcendental intrinsic families.
//!
//! Vendor math libraries implement `exp`, `tanh`, `log` and `rsqrt` with
//! different polynomial approximations and therefore different (documented,
//! bounded) ULP errors; the CUDA programming guide publishes maximum-ULP
//! tables per intrinsic. [`MathLib`] models that: each variant is a real,
//! faithfully implemented approximation whose results differ from the
//! reference by a few ULP — the same magnitude and mechanism as
//! cross-vendor intrinsic drift.

use crate::element::Element;

/// A coherent family of transcendental implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathLib {
    /// Highest-accuracy implementations (libm / double-rounded).
    Reference,
    /// Cephes-style single-precision polynomial kernels using FMA chains.
    VariantA,
    /// Base-2 range-reduction kernels without FMA contraction.
    VariantB,
}

impl MathLib {
    /// Documented maximum ULP error of `exp` under this family.
    pub fn exp_max_ulp(&self) -> f64 {
        match self {
            MathLib::Reference => 1.0,
            MathLib::VariantA => 4.0,
            MathLib::VariantB => 4.0,
        }
    }

    /// Documented maximum ULP error of `tanh` under this family.
    pub fn tanh_max_ulp(&self) -> f64 {
        match self {
            MathLib::Reference => 1.0,
            MathLib::VariantA => 4.0,
            MathLib::VariantB => 8.0,
        }
    }

    /// Documented maximum ULP error of `ln` under this family.
    pub fn ln_max_ulp(&self) -> f64 {
        match self {
            MathLib::Reference => 1.0,
            MathLib::VariantA => 2.0,
            MathLib::VariantB => 4.0,
        }
    }

    /// Documented maximum ULP error of `rsqrt` under this family.
    pub fn rsqrt_max_ulp(&self) -> f64 {
        match self {
            MathLib::Reference => 1.0,
            MathLib::VariantA => 2.0,
            MathLib::VariantB => 4.0,
        }
    }

    /// Worst documented `exp` ULP error across every allowed family — the
    /// budget a sound bound must charge when the executing kernel family
    /// is not pinned.
    pub fn exp_fleet_ulp() -> f64 {
        [MathLib::Reference, MathLib::VariantA, MathLib::VariantB]
            .iter()
            .map(MathLib::exp_max_ulp)
            .fold(0.0, f64::max)
    }

    /// Worst documented `tanh` ULP error across every allowed family.
    pub fn tanh_fleet_ulp() -> f64 {
        [MathLib::Reference, MathLib::VariantA, MathLib::VariantB]
            .iter()
            .map(MathLib::tanh_max_ulp)
            .fold(0.0, f64::max)
    }

    /// Worst documented `ln` ULP error across every allowed family.
    pub fn ln_fleet_ulp() -> f64 {
        [MathLib::Reference, MathLib::VariantA, MathLib::VariantB]
            .iter()
            .map(MathLib::ln_max_ulp)
            .fold(0.0, f64::max)
    }

    /// Worst documented `rsqrt` ULP error across every allowed family.
    pub fn rsqrt_fleet_ulp() -> f64 {
        [MathLib::Reference, MathLib::VariantA, MathLib::VariantB]
            .iter()
            .map(MathLib::rsqrt_max_ulp)
            .fold(0.0, f64::max)
    }
}

/// Element extension dispatching transcendental calls through a [`MathLib`].
///
/// `f64` always uses the reference implementations (bound arithmetic runs in
/// double precision); `f32` dispatches to the selected variant.
pub trait MathElement: Element {
    /// Exponential under the selected intrinsic family.
    fn exp_with(self, lib: MathLib) -> Self;
    /// Natural logarithm under the selected intrinsic family.
    fn ln_with(self, lib: MathLib) -> Self;
    /// Hyperbolic tangent under the selected intrinsic family.
    fn tanh_with(self, lib: MathLib) -> Self;
    /// Reciprocal square root under the selected intrinsic family.
    fn rsqrt_with(self, lib: MathLib) -> Self;
    /// Logistic sigmoid under the selected intrinsic family.
    fn sigmoid_with(self, lib: MathLib) -> Self {
        let one = Self::ONE;
        one / (one + (-self).exp_with(lib))
    }
}

impl MathElement for f64 {
    #[inline]
    fn exp_with(self, _lib: MathLib) -> Self {
        self.exp()
    }
    #[inline]
    fn ln_with(self, _lib: MathLib) -> Self {
        self.ln()
    }
    #[inline]
    fn tanh_with(self, _lib: MathLib) -> Self {
        self.tanh()
    }
    #[inline]
    fn rsqrt_with(self, _lib: MathLib) -> Self {
        1.0 / self.sqrt()
    }
}

impl MathElement for f32 {
    #[inline]
    fn exp_with(self, lib: MathLib) -> Self {
        match lib {
            MathLib::Reference => self.exp(),
            MathLib::VariantA => exp_cephes(self),
            MathLib::VariantB => exp_base2(self),
        }
    }

    #[inline]
    fn ln_with(self, lib: MathLib) -> Self {
        match lib {
            MathLib::Reference => self.ln(),
            MathLib::VariantA => ((self as f64).ln()) as f32,
            MathLib::VariantB => self.log2() * core::f32::consts::LN_2,
        }
    }

    #[inline]
    fn tanh_with(self, lib: MathLib) -> Self {
        match lib {
            MathLib::Reference => self.tanh(),
            MathLib::VariantA => tanh_cephes(self),
            MathLib::VariantB => tanh_expform(self),
        }
    }

    #[inline]
    fn rsqrt_with(self, lib: MathLib) -> Self {
        match lib {
            MathLib::Reference => (1.0 / (self as f64).sqrt()) as f32,
            MathLib::VariantA => 1.0 / self.sqrt(),
            MathLib::VariantB => rsqrt_newton(self),
        }
    }
}

/// Cephes `expf`: base-e range reduction with a degree-5 minimax polynomial
/// and FMA-contracted Horner evaluation.
// The decimal literals are Cephes' exact Cody–Waite split constants; keep
// them verbatim (LOG2EF deliberately *is* log2(e) rounded to f32).
#[allow(clippy::excessive_precision, clippy::approx_constant)]
fn exp_cephes(x: f32) -> f32 {
    const LOG2EF: f32 = 1.442_695_04;
    const C1: f32 = 0.693_359_375;
    const C2: f32 = -2.121_944_4e-4;
    if x > 88.0 {
        return f32::INFINITY;
    }
    if x < -88.0 {
        return 0.0;
    }
    let z = (LOG2EF * x + 0.5).floor();
    let n = z as i32;
    let mut x = x;
    x = z.mul_add(-C1, x);
    x = z.mul_add(-C2, x);
    let zz = x * x;
    let mut p = 1.987_569_2e-4f32;
    p = p.mul_add(x, 1.398_199_9e-3);
    p = p.mul_add(x, 8.333_452e-3);
    p = p.mul_add(x, 4.166_579_6e-2);
    p = p.mul_add(x, 1.666_666_5e-1);
    p = p.mul_add(x, 5.000_000_3e-1);
    let y = p.mul_add(zz, x + 1.0);
    ldexp_f32(y, n)
}

/// Base-2 `expf`: `exp(x) = 2^n * 2^f` with a degree-6 Taylor kernel for
/// `2^f` evaluated without FMA contraction.
// LN2_HI below is the exact high part of the Cody–Waite ln2 split.
#[allow(clippy::excessive_precision)]
fn exp_base2(x: f32) -> f32 {
    const LOG2E: f32 = core::f32::consts::LOG2_E;
    if x > 88.0 {
        return f32::INFINITY;
    }
    if x < -88.0 {
        return 0.0;
    }
    let n = (x * LOG2E).round();
    // Cody–Waite two-part reduction: r = x - n*ln2 stays accurate even for
    // large |x| because LN2_HI carries only high mantissa bits.
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // Taylor kernel e^r for r in [-ln2/2, ln2/2], evaluated without FMA.
    let c2 = 0.5f32;
    let c3 = 1.0 / 6.0;
    let c4 = 1.0 / 24.0;
    let c5 = 1.0 / 120.0;
    let c6 = 1.0 / 720.0;
    let c7 = 1.0 / 5040.0;
    let p = 1.0 + r * (1.0 + r * (c2 + r * (c3 + r * (c4 + r * (c5 + r * (c6 + r * c7))))));
    ldexp_f32(p, n as i32)
}

/// Cephes `tanhf`: odd polynomial below 0.625, exponential form above.
fn tanh_cephes(x: f32) -> f32 {
    let z = x.abs();
    let r = if z >= 8.0 {
        1.0
    } else if z > 0.625 {
        let e = exp_cephes(2.0 * z);
        1.0 - 2.0 / (e + 1.0)
    } else {
        let s = x * x;
        let mut p = -5.703_03e-3f32;
        p = p.mul_add(s, 2.065_930_1e-2);
        p = p.mul_add(s, -5.379_183e-2);
        p = p.mul_add(s, 1.333_267_2e-1);
        p = p.mul_add(s, -3.333_316e-1);
        return p.mul_add(s * x, x);
    };
    if x < 0.0 {
        -r
    } else {
        r
    }
}

/// Exponential-form `tanhf` built on the base-2 exponential, with an odd
/// Taylor kernel below 0.25 where the exponential form cancels badly.
fn tanh_expform(x: f32) -> f32 {
    let z = x.abs();
    if z >= 9.0 {
        return if x < 0.0 { -1.0 } else { 1.0 };
    }
    if z < 0.25 {
        // tanh(x) = x - x^3/3 + 2 x^5/15 - 17 x^7/315 + O(x^9).
        let s = x * x;
        let p = s * (-1.0 / 3.0 + s * (2.0 / 15.0 + s * (-17.0 / 315.0)));
        return x + x * p;
    }
    let e = exp_base2(2.0 * z);
    let r = 1.0 - 2.0 / (e + 1.0);
    if x < 0.0 {
        -r
    } else {
        r
    }
}

/// Bit-hack seeded Newton reciprocal square root (three refinements).
fn rsqrt_newton(x: f32) -> f32 {
    if x <= 0.0 {
        return if x == 0.0 { f32::INFINITY } else { f32::NAN };
    }
    let half = 0.5 * x;
    let mut y = f32::from_bits(0x5f37_5a86u32.wrapping_sub(x.to_bits() >> 1));
    for _ in 0..3 {
        y *= 1.5 - half * y * y;
    }
    y
}

/// Exact scaling by a power of two (`y * 2^n`), with graceful saturation.
fn ldexp_f32(y: f32, n: i32) -> f32 {
    // Split the scale to avoid intermediate overflow for extreme n.
    if !(-252..=252).contains(&n) {
        return if n > 0 { y * f32::INFINITY } else { y * 0.0 };
    }
    let half = n / 2;
    let rest = n - half;
    y * pow2i(half) * pow2i(rest)
}

fn pow2i(n: i32) -> f32 {
    f32::from_bits((((n + 127) as u32) & 0xff) << 23)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ULP distance between two finite f32 values.
    fn ulp_dist(a: f32, b: f32) -> u32 {
        let to_ordered = |x: f32| {
            let bits = x.to_bits() as i32;
            if bits < 0 {
                i32::MIN.wrapping_sub(bits)
            } else {
                bits
            }
        };
        (to_ordered(a) as i64 - to_ordered(b) as i64).unsigned_abs() as u32
    }

    fn sweep() -> Vec<f32> {
        let mut xs = Vec::new();
        let mut x = -20.0f32;
        while x <= 20.0 {
            xs.push(x);
            x += 0.0137;
        }
        xs
    }

    #[test]
    fn exp_variants_are_accurate() {
        for &x in &sweep() {
            let truth = ((x as f64).exp()) as f32;
            for lib in [MathLib::Reference, MathLib::VariantA, MathLib::VariantB] {
                let got = x.exp_with(lib);
                assert!(
                    ulp_dist(got, truth) <= 8,
                    "exp({x}) {lib:?}: got {got}, truth {truth}"
                );
            }
        }
    }

    #[test]
    fn exp_variants_differ_somewhere() {
        let mut saw_diff = false;
        for &x in &sweep() {
            if x.exp_with(MathLib::VariantA).to_bits() != x.exp_with(MathLib::VariantB).to_bits() {
                saw_diff = true;
                break;
            }
        }
        assert!(saw_diff, "intrinsic variants must not be bit-identical");
    }

    #[test]
    fn exp_extremes_saturate() {
        for lib in [MathLib::VariantA, MathLib::VariantB] {
            assert_eq!(100.0f32.exp_with(lib), f32::INFINITY);
            assert_eq!((-100.0f32).exp_with(lib), 0.0);
        }
    }

    #[test]
    fn tanh_variants_are_accurate() {
        for &x in &sweep() {
            let truth = ((x as f64).tanh()) as f32;
            for lib in [MathLib::Reference, MathLib::VariantA, MathLib::VariantB] {
                let got = x.tanh_with(lib);
                assert!(
                    ulp_dist(got, truth) <= 16,
                    "tanh({x}) {lib:?}: got {got}, truth {truth}"
                );
            }
        }
    }

    #[test]
    fn tanh_saturates_to_unit() {
        for lib in [MathLib::Reference, MathLib::VariantA, MathLib::VariantB] {
            assert_eq!(50.0f32.tanh_with(lib), 1.0);
            assert_eq!((-50.0f32).tanh_with(lib), -1.0);
        }
    }

    #[test]
    fn ln_variants_are_accurate() {
        let mut x = 0.01f32;
        while x < 1000.0 {
            let truth = ((x as f64).ln()) as f32;
            for lib in [MathLib::Reference, MathLib::VariantA, MathLib::VariantB] {
                assert!(ulp_dist(x.ln_with(lib), truth) <= 8, "ln({x}) {lib:?}");
            }
            x *= 1.37;
        }
    }

    #[test]
    fn rsqrt_variants_are_accurate() {
        let mut x = 1e-6f32;
        while x < 1e6 {
            let truth = (1.0 / (x as f64).sqrt()) as f32;
            for lib in [MathLib::Reference, MathLib::VariantA, MathLib::VariantB] {
                assert!(
                    ulp_dist(x.rsqrt_with(lib), truth) <= 8,
                    "rsqrt({x}) {lib:?}"
                );
            }
            x *= 2.31;
        }
    }

    #[test]
    fn rsqrt_edge_cases() {
        assert_eq!(0.0f32.rsqrt_with(MathLib::VariantB), f32::INFINITY);
        assert!((-1.0f32).rsqrt_with(MathLib::VariantB).is_nan());
    }

    #[test]
    fn sigmoid_is_bounded() {
        for &x in &sweep() {
            for lib in [MathLib::Reference, MathLib::VariantA, MathLib::VariantB] {
                let s = x.sigmoid_with(lib);
                assert!((0.0..=1.0).contains(&s), "sigmoid({x}) = {s}");
            }
        }
    }

    #[test]
    fn f64_always_reference() {
        let x = 1.234_567f64;
        assert_eq!(x.exp_with(MathLib::VariantA), x.exp());
        assert_eq!(x.tanh_with(MathLib::VariantB), x.tanh());
    }

    #[test]
    fn ldexp_matches_scalbn() {
        for n in -120..120 {
            let y = ldexp_f32(1.5, n);
            let truth = 1.5f64 * (2.0f64).powi(n);
            assert_eq!(y as f64, truth, "n={n}");
        }
    }

    #[test]
    fn max_ulp_tables_are_positive() {
        for lib in [MathLib::Reference, MathLib::VariantA, MathLib::VariantB] {
            assert!(lib.exp_max_ulp() >= 1.0);
            assert!(lib.tanh_max_ulp() >= 1.0);
            assert!(lib.ln_max_ulp() >= 1.0);
            assert!(lib.rsqrt_max_ulp() >= 1.0);
        }
    }
}
