//! Accumulation order and kernel configuration.
//!
//! This module is the heart of the cross-device nondeterminism model.
//! IEEE-754 addition is not associative, so the same mathematical reduction
//! evaluated in different orders yields different (individually correct)
//! floating-point results. Production GPU kernels legitimately reorder
//! reductions — sequentially within a thread, pairwise across a warp tree,
//! or block-wise across thread blocks — and may contract `a*b + c` into a
//! fused multiply-add with a single rounding. [`AccumMode`] and
//! [`KernelConfig`] expose exactly those degrees of freedom so that the
//! simulated devices in `tao-device` produce *genuine* IEEE-754 deviations,
//! not injected noise.
//!
//! The scalar [`AccumMode::sum`]/[`AccumMode::dot`] definitions below are
//! *normative*: the register-tiled micro-kernels in [`crate::kernel`]
//! mirror each mode's reduction structure lane by lane and must stay
//! bit-identical to them (enforced by `tests/tests/kernel_equiv.rs`).
//! Changing an order here is a change to the committed numeric contract
//! every calibrated threshold and dispute re-execution depends on.

use crate::element::Element;
use crate::math::MathLib;

/// Order in which a reduction over `n` terms is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccumMode {
    /// Strict left-to-right summation (`(((x0 + x1) + x2) + ...)`).
    ///
    /// This is the canonical reference order used for leaf re-execution.
    Sequential,
    /// Balanced binary-tree (pairwise) summation, splitting at the midpoint.
    Pairwise,
    /// Blocked summation: sequential within blocks of the given size, then a
    /// sequential reduction over the per-block partials. Models grid-level
    /// parallel reductions with a fixed tile size.
    Blocked(usize),
    /// Compensated (Kahan) summation; nearly order-independent, used as an
    /// extra-accurate device profile and in tests.
    Kahan,
}

impl AccumMode {
    /// Sums a slice in this accumulation order.
    pub fn sum<T: Element>(&self, xs: &[T]) -> T {
        match *self {
            AccumMode::Sequential => {
                let mut acc = T::ZERO;
                for &x in xs {
                    acc += x;
                }
                acc
            }
            AccumMode::Pairwise => pairwise_sum(xs),
            AccumMode::Blocked(block) => {
                let block = block.max(1);
                if xs.len() <= block {
                    return AccumMode::Sequential.sum(xs);
                }
                let mut partials = Vec::with_capacity(xs.len().div_ceil(block));
                for chunk in xs.chunks(block) {
                    partials.push(AccumMode::Sequential.sum(chunk));
                }
                AccumMode::Sequential.sum(&partials)
            }
            AccumMode::Kahan => {
                let mut acc = T::ZERO;
                let mut comp = T::ZERO;
                for &x in xs {
                    let y = x - comp;
                    let t = acc + y;
                    comp = (t - acc) - y;
                    acc = t;
                }
                acc
            }
        }
    }

    /// Dot product of two equal-length slices in this order.
    ///
    /// With `fma = true` every product is contracted into the running
    /// partial with a single rounding, as GPU tensor pipelines do; with
    /// `fma = false` each product rounds separately before accumulation.
    /// Lengths are truncated to the shorter operand.
    pub fn dot<T: Element>(&self, a: &[T], b: &[T], fma: bool) -> T {
        let n = a.len().min(b.len());
        match *self {
            AccumMode::Sequential => {
                let mut acc = T::ZERO;
                if fma {
                    for i in 0..n {
                        acc = a[i].mul_add(b[i], acc);
                    }
                } else {
                    for i in 0..n {
                        acc += a[i] * b[i];
                    }
                }
                acc
            }
            AccumMode::Pairwise => pairwise_dot(&a[..n], &b[..n], fma),
            AccumMode::Blocked(block) => {
                let block = block.max(1);
                if n <= block {
                    return AccumMode::Sequential.dot(&a[..n], &b[..n], fma);
                }
                let mut partials = Vec::with_capacity(n.div_ceil(block));
                let mut i = 0;
                while i < n {
                    let end = (i + block).min(n);
                    partials.push(AccumMode::Sequential.dot(&a[i..end], &b[i..end], fma));
                    i = end;
                }
                AccumMode::Sequential.sum(&partials)
            }
            AccumMode::Kahan => {
                // Products round individually; the additions are compensated.
                let mut acc = T::ZERO;
                let mut comp = T::ZERO;
                for i in 0..n {
                    let x = a[i] * b[i];
                    let y = x - comp;
                    let t = acc + y;
                    comp = (t - acc) - y;
                    acc = t;
                }
                acc
            }
        }
    }
}

fn pairwise_sum<T: Element>(xs: &[T]) -> T {
    match xs.len() {
        0 => T::ZERO,
        1 => xs[0],
        2 => xs[0] + xs[1],
        n => {
            let mid = n / 2;
            pairwise_sum(&xs[..mid]) + pairwise_sum(&xs[mid..])
        }
    }
}

fn pairwise_dot<T: Element>(a: &[T], b: &[T], fma: bool) -> T {
    match a.len() {
        0 => T::ZERO,
        1 => a[0] * b[0],
        2 => {
            if fma {
                a[1].mul_add(b[1], a[0] * b[0])
            } else {
                a[0] * b[0] + a[1] * b[1]
            }
        }
        n => {
            let mid = n / 2;
            pairwise_dot(&a[..mid], &b[..mid], fma) + pairwise_dot(&a[mid..], &b[mid..], fma)
        }
    }
}

/// Full kernel configuration binding accumulation order, FMA contraction
/// and the transcendental-intrinsic implementation set.
///
/// A [`KernelConfig`] is the tensor-level description of "how this device's
/// kernels round"; `tao-device` wraps named device profiles around it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KernelConfig {
    /// Reduction evaluation order.
    pub accum: AccumMode,
    /// Whether multiply-accumulate contracts into a fused operation.
    pub fma: bool,
    /// Transcendental intrinsic implementation family.
    pub math: MathLib,
}

impl KernelConfig {
    /// Canonical reference configuration: sequential order, no FMA, libm
    /// intrinsics. Leaf adjudication re-executes under this configuration.
    pub fn reference() -> Self {
        KernelConfig {
            accum: AccumMode::Sequential,
            fma: false,
            math: MathLib::Reference,
        }
    }

    /// Sums a slice under this configuration's accumulation order.
    pub fn sum<T: Element>(&self, xs: &[T]) -> T {
        self.accum.sum(xs)
    }

    /// Dot product under this configuration.
    pub fn dot<T: Element>(&self, a: &[T], b: &[T]) -> T {
        self.accum.dot(a, b, self.fma)
    }

    /// Number of basic additions in a length-`n` reduction (for bound `k`).
    pub fn reduction_depth(n: usize) -> usize {
        n.saturating_sub(1)
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ill_conditioned(n: usize) -> Vec<f32> {
        // Pseudo-random mixed-magnitude values (xorshift) maximize order
        // sensitivity without depending on external crates.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
                let mag = 10f64.powf(unit * 8.0 - 4.0);
                let sign = if state & 1 == 0 { 1.0 } else { -1.0 };
                (sign * mag) as f32
            })
            .collect()
    }

    #[test]
    fn all_orders_agree_on_exact_sums() {
        let xs: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let expected = 2016.0f32;
        for mode in [
            AccumMode::Sequential,
            AccumMode::Pairwise,
            AccumMode::Blocked(8),
            AccumMode::Kahan,
        ] {
            assert_eq!(mode.sum(&xs), expected, "{mode:?}");
        }
    }

    #[test]
    fn orders_differ_on_ill_conditioned_input() {
        let xs = ill_conditioned(1024);
        let seq = AccumMode::Sequential.sum(&xs);
        let pair = AccumMode::Pairwise.sum(&xs);
        let blocked = AccumMode::Blocked(32).sum(&xs);
        // At least one pair of orders must disagree in the last bits; this is
        // the nondeterminism the verification protocol tolerates.
        assert!(
            seq != pair || seq != blocked,
            "expected rounding differences"
        );
    }

    #[test]
    fn kahan_is_closest_to_f64_reference() {
        let xs = ill_conditioned(4096);
        let reference: f64 = xs.iter().map(|&x| x as f64).sum();
        let err = |v: f32| ((v as f64) - reference).abs();
        let kahan = err(AccumMode::Kahan.sum(&xs));
        let seq = err(AccumMode::Sequential.sum(&xs));
        assert!(kahan <= seq, "kahan {kahan} vs sequential {seq}");
    }

    #[test]
    fn blocked_degenerates_to_sequential_for_small_inputs() {
        let xs = ill_conditioned(16);
        assert_eq!(
            AccumMode::Blocked(32).sum(&xs),
            AccumMode::Sequential.sum(&xs)
        );
    }

    #[test]
    fn blocked_zero_block_is_clamped() {
        let xs = [1.0f32, 2.0, 3.0];
        // Must not panic or loop forever.
        let v = AccumMode::Blocked(0).sum(&xs);
        assert_eq!(v, 6.0);
    }

    #[test]
    fn dot_matches_manual_sequential() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        assert_eq!(AccumMode::Sequential.dot(&a, &b, false), 32.0);
        assert_eq!(AccumMode::Pairwise.dot(&a, &b, false), 32.0);
    }

    #[test]
    fn fma_changes_rounding() {
        // acc becomes -1, then fma(1+eps, 1+2eps, -1) keeps the 2eps^2 term
        // that the unfused product discards when rounding near 1.
        let eps = f32::EPSILON;
        let a = [1.0f32, 1.0 + eps];
        let b = [-1.0f32, 1.0 + 2.0 * eps];
        let fused = AccumMode::Sequential.dot(&a, &b, true);
        let unfused = AccumMode::Sequential.dot(&a, &b, false);
        assert_ne!(fused.to_bits(), unfused.to_bits());
    }

    #[test]
    fn dot_truncates_to_shorter() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 1.0];
        assert_eq!(AccumMode::Sequential.dot(&a, &b, false), 3.0);
    }

    #[test]
    fn empty_reductions_are_zero() {
        let xs: [f32; 0] = [];
        for mode in [
            AccumMode::Sequential,
            AccumMode::Pairwise,
            AccumMode::Blocked(4),
            AccumMode::Kahan,
        ] {
            assert_eq!(mode.sum(&xs), 0.0);
            assert_eq!(mode.dot(&xs, &xs, true), 0.0);
        }
    }

    #[test]
    fn reference_config_is_default() {
        assert_eq!(KernelConfig::default(), KernelConfig::reference());
    }

    #[test]
    fn reduction_depth_formula() {
        assert_eq!(KernelConfig::reduction_depth(0), 0);
        assert_eq!(KernelConfig::reduction_depth(1), 0);
        assert_eq!(KernelConfig::reduction_depth(10), 9);
    }
}
