//! Shape arithmetic: volumes, row-major strides, broadcasting, index math.

use crate::error::TensorError;
use crate::Result;

/// A tensor shape (dimension extents, row-major).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                expected: self.rank(),
                got: index.len(),
                op: "offset",
            });
        }
        let strides = self.strides();
        let mut off = 0;
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfRange {
                    index: i,
                    extent: d,
                });
            }
            off += i * strides[axis];
        }
        Ok(off)
    }

    /// Multi-index of a flat row-major offset.
    pub fn unravel(&self, mut flat: usize) -> Vec<usize> {
        let mut idx = vec![0usize; self.rank()];
        for axis in (0..self.rank()).rev() {
            let d = self.0[axis].max(1);
            idx[axis] = flat % d;
            flat /= d;
        }
        idx
    }

    /// Normalizes a possibly negative axis (`-1` = last) into `0..rank`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] when out of range.
    pub fn normalize_axis(&self, axis: isize) -> Result<usize> {
        let rank = self.rank() as isize;
        let a = if axis < 0 { axis + rank } else { axis };
        if a < 0 || a >= rank {
            Err(TensorError::AxisOutOfRange {
                axis: axis.unsigned_abs(),
                rank: self.rank(),
            })
        } else {
            Ok(a as usize)
        }
    }

    /// Broadcasts two shapes following NumPy/PyTorch semantics.
    ///
    /// Trailing dimensions are aligned; each pair must be equal or one of
    /// them must be `1`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes are not
    /// broadcast-compatible.
    pub fn broadcast(&self, other: &Shape) -> Result<Shape> {
        let rank = self.rank().max(other.rank());
        let mut out = vec![0usize; rank];
        for (i, slot) in out.iter_mut().enumerate() {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.0[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.0[i - (rank - other.rank())]
            };
            *slot = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return Err(TensorError::ShapeMismatch {
                    lhs: self.0.clone(),
                    rhs: other.0.clone(),
                    op: "broadcast",
                });
            };
        }
        Ok(Shape(out))
    }

    /// Returns true if `self` can broadcast *to* `target` (not merely with).
    pub fn broadcastable_to(&self, target: &Shape) -> bool {
        if self.rank() > target.rank() {
            return false;
        }
        let pad = target.rank() - self.rank();
        self.0
            .iter()
            .enumerate()
            .all(|(i, &d)| d == target.0[i + pad] || d == 1)
    }

    /// Dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

/// Iterator over all multi-indices of a shape in row-major order.
pub struct IndexIter {
    shape: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl IndexIter {
    /// Creates an iterator over every multi-index of `shape`.
    pub fn new(shape: &Shape) -> Self {
        let start = if shape.volume() == 0 {
            None
        } else {
            Some(vec![0; shape.rank()])
        };
        IndexIter {
            shape: shape.0.clone(),
            next: start,
        }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.clone()?;
        // Advance like an odometer.
        let mut nxt = current.clone();
        let mut axis = self.shape.len();
        loop {
            if axis == 0 {
                self.next = None;
                break;
            }
            axis -= 1;
            nxt[axis] += 1;
            if nxt[axis] < self.shape[axis] {
                self.next = Some(nxt);
                break;
            }
            nxt[axis] = 0;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn offset_and_unravel_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        for flat in 0..s.volume() {
            let idx = s.unravel(flat);
            assert_eq!(s.offset(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn offset_rejects_out_of_range() {
        let s = Shape::new(&[2, 2]);
        assert!(matches!(
            s.offset(&[0, 2]),
            Err(TensorError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::new(&[3, 1]);
        let b = Shape::new(&[1, 4]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::new(&[3, 4]));
        let c = Shape::new(&[2, 3, 4]);
        let d = Shape::new(&[4]);
        assert_eq!(c.broadcast(&d).unwrap(), Shape::new(&[2, 3, 4]));
        let e = Shape::new(&[2]);
        assert!(c.broadcast(&e).is_err());
    }

    #[test]
    fn broadcastable_to_checks_direction() {
        assert!(Shape::new(&[1, 4]).broadcastable_to(&Shape::new(&[3, 4])));
        assert!(!Shape::new(&[3, 4]).broadcastable_to(&Shape::new(&[1, 4])));
        assert!(Shape::new(&[4]).broadcastable_to(&Shape::new(&[2, 3, 4])));
    }

    #[test]
    fn normalize_axis_handles_negative() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.normalize_axis(-1).unwrap(), 2);
        assert_eq!(s.normalize_axis(0).unwrap(), 0);
        assert!(s.normalize_axis(3).is_err());
        assert!(s.normalize_axis(-4).is_err());
    }

    #[test]
    fn index_iter_covers_all() {
        let s = Shape::new(&[2, 3]);
        let all: Vec<_> = IndexIter::new(&s).collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[5], vec![1, 2]);
    }

    #[test]
    fn index_iter_empty_shape() {
        let s = Shape::new(&[0, 3]);
        assert_eq!(IndexIter::new(&s).count(), 0);
    }
}
