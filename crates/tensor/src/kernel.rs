//! Cache-blocked, register-tiled, optionally multi-threaded kernel core.
//!
//! This module is the performance engine behind [`Tensor::matmul`],
//! [`Tensor::linear`] and [`Tensor::conv2d`]
//! (via im2col), built under one hard contract: **every output element is
//! bit-identical to the scalar oracle** — the value `cfg.dot(row, col)`
//! produces for that element's canonical-order operand slices. The
//! accumulation order and FMA contraction of a [`KernelConfig`] are part of
//! the *committed* numeric behavior the TAO protocol verifies (thresholds
//! are calibrated against them, leaf adjudication re-executes under them),
//! so an optimization that reorders a single addition is a consensus bug,
//! not a speedup.
//!
//! The freedoms a faithful kernel does have are exactly the ones real BLAS
//! implementations exploit *between* dot products, never inside one:
//!
//! * **Packing.** The right-hand side is repacked once into column panels of
//!   [`PANEL`] interleaved columns (`panel[kk * PANEL + j]` holds row `kk` of
//!   panel-column `j`), so the inner loop streams both operands
//!   contiguously. Packing moves bytes, not arithmetic: no rounding changes.
//! * **Register tiling.** The micro-kernel evaluates [`PANEL`] *independent*
//!   dot products at once — one accumulator lane per output column, each
//!   lane stepping through `k` in precisely the order the scalar
//!   [`AccumMode`] definition dictates. The speedup comes from running
//!   [`PANEL`] dependency chains in parallel instead of waiting out the FP
//!   add latency of a single chain; no chain is ever reassociated.
//! * **Row-band threading.** Output rows are independent, so row bands are
//!   fanned out over `std::thread::scope` workers. Each element is computed
//!   by exactly one worker with exactly the single-thread instruction
//!   sequence, making results independent of the thread count.
//!
//! The differential harness in `tests/tests/kernel_equiv.rs` proptests
//! blocked-vs-oracle bit equality across every accumulation mode, FMA
//! setting and a broad shape family; the scalar oracles
//! ([`Tensor::matmul_reference`] and friends) stay in-tree permanently for
//! that purpose.
//!
//! [`Tensor::matmul`]: crate::Tensor::matmul
//! [`Tensor::linear`]: crate::Tensor::linear
//! [`Tensor::conv2d`]: crate::Tensor::conv2d
//! [`Tensor::matmul_reference`]: crate::Tensor::matmul_reference

use crate::accum::{AccumMode, KernelConfig};
use crate::element::{Element, Scalar};

/// Register-tile width: how many output columns one micro-kernel call
/// produces, i.e. how many independent accumulation chains run in flight.
pub const PANEL: usize = 8;

/// Upper bound on kernel worker threads (matches the protocol-level
/// `MAX_PAR_THREADS` fan-out cap so nested parallelism stays bounded).
pub const MAX_KERNEL_THREADS: usize = 8;

/// Minimum multiply-accumulate count before a GEMM fans out to threads;
/// below this the spawn cost dominates any speedup.
const PAR_MIN_FLOPS: u64 = 1 << 18;

/// The right-hand operand of a GEMM, repacked into interleaved column
/// panels of width [`PANEL`] (zero-padded past `n`; padded lanes are
/// computed and discarded, never observable).
#[derive(Debug, Clone)]
pub struct PackedRhs<T: Scalar> {
    k: usize,
    n: usize,
    panels: Vec<T>,
}

impl<T: Scalar> PackedRhs<T> {
    /// Packs a `k x n` operand whose element at reduction index `kk`,
    /// output column `col` is produced by `at(kk, col)`.
    ///
    /// This closure form lets callers pack straight from their natural
    /// layout — row-major matrices, transposed weight matrices, or im2col
    /// gathers — without materializing an intermediate matrix.
    pub fn pack_with(k: usize, n: usize, at: impl Fn(usize, usize) -> T) -> Self {
        let num_panels = n.div_ceil(PANEL);
        let mut panels = vec![T::ZERO; num_panels * k * PANEL];
        for p in 0..num_panels {
            let base = p * k * PANEL;
            let col0 = p * PANEL;
            let width = PANEL.min(n - col0);
            for kk in 0..k {
                let row = &mut panels[base + kk * PANEL..base + (kk + 1) * PANEL];
                for (j, slot) in row.iter_mut().enumerate().take(width) {
                    *slot = at(kk, col0 + j);
                }
            }
        }
        PackedRhs { k, n, panels }
    }

    /// Packs a row-major `[k, n]` matrix (the `B` of `A @ B`).
    pub fn from_row_major(b: &[T], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "rhs length mismatch");
        Self::pack_with(k, n, |kk, col| b[kk * n + col])
    }

    /// Packs a row-major `[n, k]` matrix holding the *transposed* operand —
    /// e.g. a `nn.Linear` weight `[out, in]`, whose rows are already the
    /// columns the dot products consume.
    pub fn from_transposed(bt: &[T], n: usize, k: usize) -> Self {
        assert_eq!(bt.len(), n * k, "transposed rhs length mismatch");
        Self::pack_with(k, n, |kk, col| bt[col * k + kk])
    }

    /// Reduction length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output column count `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Raw interleaved panel storage (`n.div_ceil(PANEL) * k * PANEL`
    /// elements; padded lanes hold `T::ZERO`). Crate-internal: the
    /// quantized GEMM micro-kernels stream panels directly.
    pub(crate) fn panels(&self) -> &[T] {
        &self.panels
    }
}

/// One register tile: [`PANEL`] dot products of `a` against the panel's
/// interleaved columns, every lane following the scalar sequential order
/// (`acc += a[i] * b[i]`, or FMA-contracted when `fma`).
fn seq_tile<T: Element>(a: &[T], panel: &[T], fma: bool) -> [T; PANEL] {
    let mut acc = [T::ZERO; PANEL];
    if fma {
        for (kk, &av) in a.iter().enumerate() {
            let row = &panel[kk * PANEL..(kk + 1) * PANEL];
            for (lane, &bv) in acc.iter_mut().zip(row) {
                *lane = av.mul_add(bv, *lane);
            }
        }
    } else {
        for (kk, &av) in a.iter().enumerate() {
            let row = &panel[kk * PANEL..(kk + 1) * PANEL];
            for (lane, &bv) in acc.iter_mut().zip(row) {
                *lane += av * bv;
            }
        }
    }
    acc
}

/// Pairwise (balanced-tree) register tile; the recursion splits at the same
/// midpoints as the scalar `pairwise_dot`, so every lane reduces its
/// products in the identical tree shape.
fn pairwise_tile<T: Element>(a: &[T], panel: &[T], fma: bool) -> [T; PANEL] {
    let mut out = [T::ZERO; PANEL];
    match a.len() {
        0 => {}
        1 => {
            for (lane, &bv) in out.iter_mut().zip(&panel[..PANEL]) {
                *lane = a[0] * bv;
            }
        }
        2 => {
            let (r0, r1) = panel[..2 * PANEL].split_at(PANEL);
            for ((lane, &b0), &b1) in out.iter_mut().zip(r0).zip(r1) {
                *lane = if fma {
                    a[1].mul_add(b1, a[0] * b0)
                } else {
                    a[0] * b0 + a[1] * b1
                };
            }
        }
        n => {
            let mid = n / 2;
            let left = pairwise_tile(&a[..mid], &panel[..mid * PANEL], fma);
            let right = pairwise_tile(&a[mid..], &panel[mid * PANEL..], fma);
            for ((lane, &l), &r) in out.iter_mut().zip(&left).zip(&right) {
                *lane = l + r;
            }
        }
    }
    out
}

/// Blocked register tile: sequential partials per `block`-sized chunk, then
/// a strict left-to-right reduction of the partials — the exact structure
/// of the scalar `AccumMode::Blocked` dot, lane by lane.
fn blocked_tile<T: Element>(block: usize, a: &[T], panel: &[T], fma: bool) -> [T; PANEL] {
    let block = block.max(1);
    let k = a.len();
    if k <= block {
        return seq_tile(a, panel, fma);
    }
    let mut acc = [T::ZERO; PANEL];
    let mut i = 0;
    while i < k {
        let end = (i + block).min(k);
        let partial = seq_tile(&a[i..end], &panel[i * PANEL..end * PANEL], fma);
        for (lane, &p) in acc.iter_mut().zip(&partial) {
            *lane += p;
        }
        i = end;
    }
    acc
}

/// Kahan-compensated register tile; products round individually and the
/// compensated update sequence per lane matches the scalar Kahan dot.
fn kahan_tile<T: Element>(a: &[T], panel: &[T]) -> [T; PANEL] {
    let mut acc = [T::ZERO; PANEL];
    let mut comp = [T::ZERO; PANEL];
    for (kk, &av) in a.iter().enumerate() {
        let row = &panel[kk * PANEL..(kk + 1) * PANEL];
        for ((lane, c), &bv) in acc.iter_mut().zip(comp.iter_mut()).zip(row) {
            let x = av * bv;
            let y = x - *c;
            let t = *lane + y;
            *c = (t - *lane) - y;
            *lane = t;
        }
    }
    acc
}

/// Dispatches one register tile under `cfg`'s accumulation order and FMA
/// setting. `f32` tiles use the AVX2/FMA vector micro-kernel when the host
/// supports it: [`PANEL`] is exactly one 256-bit vector, and per-lane
/// vector multiply/add/fused-multiply-add are the *same* IEEE-754
/// operations as their scalar counterparts, so the specialization is
/// bit-identical (covered by the same differential tests).
fn dot_tile<T: Element>(cfg: &KernelConfig, a: &[T], panel: &[T]) -> [T; PANEL] {
    #[cfg(target_arch = "x86_64")]
    if core::any::TypeId::of::<T>() == core::any::TypeId::of::<f32>() && x86::have_fma_simd() {
        // SAFETY: `T` is `f32` (checked above), so the slices reinterpret
        // losslessly and the result array transmutes element-for-element;
        // the target features were runtime-detected.
        unsafe {
            let a32 = core::slice::from_raw_parts(a.as_ptr().cast::<f32>(), a.len());
            let p32 = core::slice::from_raw_parts(panel.as_ptr().cast::<f32>(), panel.len());
            let tile = x86::dot_tile_f32(cfg, a32, p32);
            return core::mem::transmute_copy(&tile);
        }
    }
    match cfg.accum {
        AccumMode::Sequential => seq_tile(a, panel, cfg.fma),
        AccumMode::Pairwise => pairwise_tile(a, panel, cfg.fma),
        AccumMode::Blocked(block) => blocked_tile(block, a, panel, cfg.fma),
        AccumMode::Kahan => kahan_tile(a, panel),
    }
}

/// AVX2/FMA register-tile specialization for `f32`.
///
/// Each 256-bit vector holds the [`PANEL`] independent accumulator lanes;
/// `vmulps`/`vaddps`/`vfmadd231ps` apply the identical IEEE-754 rounding
/// per lane as the scalar `*`/`+`/`mul_add`, so every micro-kernel below is
/// a transliteration of its scalar counterpart, not a reassociation.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{AccumMode, KernelConfig, MR, PANEL};
    use core::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_storeu_ps, _mm256_sub_ps,
    };
    use std::sync::OnceLock;

    /// Runtime AVX2+FMA detection, cached after the first call.
    pub(super) fn have_fma_simd() -> bool {
        static HAVE: OnceLock<bool> = OnceLock::new();
        *HAVE.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }

    /// # Safety
    ///
    /// Requires AVX2+FMA (checked by [`have_fma_simd`]) and
    /// `panel.len() == a.len() * PANEL`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot_tile_f32(
        cfg: &KernelConfig,
        a: &[f32],
        panel: &[f32],
    ) -> [f32; PANEL] {
        debug_assert_eq!(panel.len(), a.len() * PANEL);
        let acc = match cfg.accum {
            AccumMode::Sequential => seq_v(a, panel, cfg.fma),
            AccumMode::Pairwise => pairwise_v(a, panel, cfg.fma),
            AccumMode::Blocked(block) => blocked_v(block, a, panel, cfg.fma),
            AccumMode::Kahan => kahan_v(a, panel),
        };
        let mut out = [0f32; PANEL];
        _mm256_storeu_ps(out.as_mut_ptr(), acc);
        out
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn seq_v(a: &[f32], panel: &[f32], fma: bool) -> __m256 {
        let mut acc = _mm256_setzero_ps();
        let p = panel.as_ptr();
        if fma {
            for (kk, &av) in a.iter().enumerate() {
                let row = _mm256_loadu_ps(p.add(kk * PANEL));
                acc = _mm256_fmadd_ps(_mm256_set1_ps(av), row, acc);
            }
        } else {
            for (kk, &av) in a.iter().enumerate() {
                let row = _mm256_loadu_ps(p.add(kk * PANEL));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), row));
            }
        }
        acc
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn pairwise_v(a: &[f32], panel: &[f32], fma: bool) -> __m256 {
        let p = panel.as_ptr();
        match a.len() {
            0 => _mm256_setzero_ps(),
            1 => _mm256_mul_ps(_mm256_set1_ps(a[0]), _mm256_loadu_ps(p)),
            2 => {
                let m0 = _mm256_mul_ps(_mm256_set1_ps(a[0]), _mm256_loadu_ps(p));
                let r1 = _mm256_loadu_ps(p.add(PANEL));
                if fma {
                    _mm256_fmadd_ps(_mm256_set1_ps(a[1]), r1, m0)
                } else {
                    _mm256_add_ps(m0, _mm256_mul_ps(_mm256_set1_ps(a[1]), r1))
                }
            }
            n => {
                let mid = n / 2;
                let left = pairwise_v(&a[..mid], &panel[..mid * PANEL], fma);
                let right = pairwise_v(&a[mid..], &panel[mid * PANEL..], fma);
                _mm256_add_ps(left, right)
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn blocked_v(block: usize, a: &[f32], panel: &[f32], fma: bool) -> __m256 {
        let block = block.max(1);
        let k = a.len();
        if k <= block {
            return seq_v(a, panel, fma);
        }
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < k {
            let end = (i + block).min(k);
            let partial = seq_v(&a[i..end], &panel[i * PANEL..end * PANEL], fma);
            acc = _mm256_add_ps(acc, partial);
            i = end;
        }
        acc
    }

    /// [`MR`]-row register block for the packed-lhs path. Zero-padded
    /// block rows are computed and discarded by the caller.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA (checked by [`have_fma_simd`]),
    /// `panel.len() == (block.len() / MR) * PANEL`, and a sequential or
    /// blocked accumulation mode in `cfg`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn mr_tile_f32(
        cfg: &KernelConfig,
        block: &[f32],
        rows: usize,
        panel: &[f32],
    ) -> [[f32; PANEL]; MR] {
        let _ = rows; // All MR lanes are computed; padded rows are discarded.
        let acc = match cfg.accum {
            AccumMode::Sequential => seq_mr_v(block, panel, cfg.fma),
            AccumMode::Blocked(kblock) => blocked_mr_v(kblock, block, panel, cfg.fma),
            _ => unreachable!("lhs_pack_applies gates the packed-lhs path"),
        };
        let mut out = [[0f32; PANEL]; MR];
        for (slot, lane) in out.iter_mut().zip(&acc) {
            _mm256_storeu_ps(slot.as_mut_ptr(), *lane);
        }
        out
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn seq_mr_v(block: &[f32], panel: &[f32], fma: bool) -> [__m256; MR] {
        let k = block.len() / MR;
        let mut acc = [_mm256_setzero_ps(); MR];
        let p = panel.as_ptr();
        let b = block.as_ptr();
        if fma {
            for kk in 0..k {
                let row = _mm256_loadu_ps(p.add(kk * PANEL));
                for (r, lane) in acc.iter_mut().enumerate() {
                    *lane = _mm256_fmadd_ps(_mm256_set1_ps(*b.add(kk * MR + r)), row, *lane);
                }
            }
        } else {
            for kk in 0..k {
                let row = _mm256_loadu_ps(p.add(kk * PANEL));
                for (r, lane) in acc.iter_mut().enumerate() {
                    *lane = _mm256_add_ps(
                        *lane,
                        _mm256_mul_ps(_mm256_set1_ps(*b.add(kk * MR + r)), row),
                    );
                }
            }
        }
        acc
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn blocked_mr_v(kblock: usize, block: &[f32], panel: &[f32], fma: bool) -> [__m256; MR] {
        let kblock = kblock.max(1);
        let k = block.len() / MR;
        if k <= kblock {
            return seq_mr_v(block, panel, fma);
        }
        let mut acc = [_mm256_setzero_ps(); MR];
        let mut i = 0;
        while i < k {
            let end = (i + kblock).min(k);
            let partial = seq_mr_v(&block[i * MR..end * MR], &panel[i * PANEL..end * PANEL], fma);
            for (lane, part) in acc.iter_mut().zip(&partial) {
                *lane = _mm256_add_ps(*lane, *part);
            }
            i = end;
        }
        acc
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn kahan_v(a: &[f32], panel: &[f32]) -> __m256 {
        let mut acc = _mm256_setzero_ps();
        let mut comp = _mm256_setzero_ps();
        let p = panel.as_ptr();
        for (kk, &av) in a.iter().enumerate() {
            let x = _mm256_mul_ps(_mm256_set1_ps(av), _mm256_loadu_ps(p.add(kk * PANEL)));
            let y = _mm256_sub_ps(x, comp);
            let t = _mm256_add_ps(acc, y);
            comp = _mm256_sub_ps(_mm256_sub_ps(t, acc), y);
            acc = t;
        }
        acc
    }
}

/// Computes one output row: `out_row[col] = cfg.dot(a_row, column col)`.
fn gemm_row<T: Element>(cfg: &KernelConfig, a_row: &[T], rhs: &PackedRhs<T>, out_row: &mut [T]) {
    if rhs.k == 0 {
        out_row.fill(T::ZERO);
        return;
    }
    let panel_len = rhs.k * PANEL;
    for (p, panel) in rhs.panels.chunks(panel_len).enumerate() {
        let tile = dot_tile(cfg, a_row, panel);
        let col0 = p * PANEL;
        let width = PANEL.min(rhs.n - col0);
        out_row[col0..col0 + width].copy_from_slice(&tile[..width]);
    }
}

/// Worker-thread count appropriate for `flops` multiply-accumulates: 1
/// below the fan-out threshold, otherwise the host parallelism capped at
/// [`MAX_KERNEL_THREADS`].
pub fn auto_threads(flops: u64) -> usize {
    if flops < PAR_MIN_FLOPS {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_KERNEL_THREADS)
}

/// Splits `out` into contiguous bands of whole `unit`-element chunks and
/// runs `f(first_unit_index, band)` for each band on a scoped worker
/// thread (or inline when one worker suffices). Units are never split
/// across workers, so any per-unit computation is identical at every
/// thread count.
pub(crate) fn par_bands<T, F>(out: &mut [T], unit: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let units = out.len().checked_div(unit).unwrap_or(0);
    let workers = threads.clamp(1, MAX_KERNEL_THREADS).min(units.max(1));
    if workers <= 1 {
        f(0, out);
        return;
    }
    let per = units.div_ceil(workers);
    std::thread::scope(|scope| {
        for (wi, band) in out.chunks_mut(per * unit).enumerate() {
            let f = &f;
            scope.spawn(move || f(wi * per, band));
        }
    });
}

/// Blocked GEMM into a preallocated buffer: `out[row * n + col] =
/// cfg.dot(a[row*k..][..k], column col of rhs)` for every row and column,
/// bit-identical to the scalar oracle at any `threads` count.
///
/// # Panics
///
/// Panics if `a` is not `m * rhs.k()` long or `out` is not
/// `m * rhs.n()` long.
pub fn gemm_into<T: Element>(
    cfg: &KernelConfig,
    a: &[T],
    m: usize,
    rhs: &PackedRhs<T>,
    out: &mut [T],
    threads: usize,
) {
    assert_eq!(a.len(), m * rhs.k, "lhs length mismatch");
    assert_eq!(out.len(), m * rhs.n, "out length mismatch");
    if rhs.n == 0 {
        return;
    }
    par_bands(out, rhs.n, threads, |row0, band| {
        for (i, out_row) in band.chunks_mut(rhs.n).enumerate() {
            let row = row0 + i;
            gemm_row(cfg, &a[row * rhs.k..(row + 1) * rhs.k], rhs, out_row);
        }
    });
}

/// Allocating convenience wrapper around [`gemm_into`] (used by the kernel
/// microbenchmarks to pin an explicit thread count).
pub fn gemm<T: Element>(
    cfg: &KernelConfig,
    a: &[T],
    m: usize,
    rhs: &PackedRhs<T>,
    threads: usize,
) -> Vec<T> {
    let mut out = vec![T::ZERO; m * rhs.n];
    gemm_into(cfg, a, m, rhs, &mut out, threads);
    out
}

/// Row-block height of the packed-lhs micro-kernel: how many output rows
/// one [`PackedLhs`] panel interleaves, i.e. how many rows share each
/// streamed rhs panel load.
pub const MR: usize = 4;

/// The left-hand operand of a GEMM, repacked into row blocks of [`MR`]
/// interleaved rows (`panel[kk * MR + r]` holds reduction index `kk` of
/// block-row `r`; rows past `m` are zero-padded, computed and discarded).
///
/// Packing the lhs buys two things the row-at-a-time `gemm_row` path
/// cannot: each rhs panel row is loaded once and reused across [`MR`]
/// output rows, and [`MR`] independent accumulation chains run per column
/// lane instead of one — which is what hides the FP-add/FMA latency on
/// attention-shaped batched matmuls, where each batch's lhs is packed
/// once and reused across every column panel of that batch's GEMM.
/// Like rhs packing, this moves bytes, not arithmetic: every output
/// element's dot product still reduces in the exact scalar-oracle order.
#[derive(Debug, Clone)]
pub struct PackedLhs<T: Scalar> {
    m: usize,
    k: usize,
    panels: Vec<T>,
}

impl<T: Scalar> PackedLhs<T> {
    /// Packs an `m x k` operand whose element at output row `row`,
    /// reduction index `kk` is produced by `at(row, kk)`.
    pub fn pack_with(m: usize, k: usize, at: impl Fn(usize, usize) -> T) -> Self {
        let num_blocks = m.div_ceil(MR);
        let mut panels = vec![T::ZERO; num_blocks * k * MR];
        for p in 0..num_blocks {
            let base = p * k * MR;
            let row0 = p * MR;
            let height = MR.min(m - row0);
            for kk in 0..k {
                let slot = &mut panels[base + kk * MR..base + (kk + 1) * MR];
                for (r, lane) in slot.iter_mut().enumerate().take(height) {
                    *lane = at(row0 + r, kk);
                }
            }
        }
        PackedLhs { m, k, panels }
    }

    /// Packs a row-major `[m, k]` matrix (the `A` of `A @ B`).
    pub fn from_row_major(a: &[T], m: usize, k: usize) -> Self {
        assert_eq!(a.len(), m * k, "lhs length mismatch");
        Self::pack_with(m, k, |row, kk| a[row * k + kk])
    }

    /// Output row count `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Reduction length `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Whether `cfg` has a packed-lhs [`MR`]-row micro-kernel. Sequential and
/// blocked accumulation tile directly (their per-row chains are plain
/// left-to-right folds the block kernel replays verbatim); pairwise and
/// Kahan configs keep the row-at-a-time path.
pub fn lhs_pack_applies(cfg: &KernelConfig) -> bool {
    matches!(cfg.accum, AccumMode::Sequential | AccumMode::Blocked(_))
}

/// One [`MR`]x[`PANEL`] sequential register block: `rows` dot products per
/// column lane, every row following the scalar sequential order.
fn seq_mr_tile<T: Element>(
    block: &[T],
    rows: usize,
    panel: &[T],
    fma: bool,
    acc: &mut [[T; PANEL]; MR],
) {
    let k = block.len() / MR;
    for kk in 0..k {
        let brow = &panel[kk * PANEL..(kk + 1) * PANEL];
        let arow = &block[kk * MR..kk * MR + rows];
        for (r, &av) in arow.iter().enumerate() {
            for (lane, &bv) in acc[r].iter_mut().zip(brow) {
                *lane = if fma { av.mul_add(bv, *lane) } else { *lane + av * bv };
            }
        }
    }
}

/// Blocked variant of [`seq_mr_tile`]: per-row sequential partials per
/// `block`-sized `k` chunk with a strict left-to-right partial reduction —
/// the exact scalar `AccumMode::Blocked` structure, row by row.
fn blocked_mr_tile<T: Element>(
    kblock: usize,
    lhs_block: &[T],
    rows: usize,
    panel: &[T],
    fma: bool,
) -> [[T; PANEL]; MR] {
    let kblock = kblock.max(1);
    let k = lhs_block.len() / MR;
    let mut acc = [[T::ZERO; PANEL]; MR];
    if k <= kblock {
        seq_mr_tile(lhs_block, rows, panel, fma, &mut acc);
        return acc;
    }
    let mut i = 0;
    while i < k {
        let end = (i + kblock).min(k);
        let mut partial = [[T::ZERO; PANEL]; MR];
        seq_mr_tile(
            &lhs_block[i * MR..end * MR],
            rows,
            &panel[i * PANEL..end * PANEL],
            fma,
            &mut partial,
        );
        for (accr, partr) in acc.iter_mut().zip(&partial) {
            for (lane, &p) in accr.iter_mut().zip(partr) {
                *lane += p;
            }
        }
        i = end;
    }
    acc
}

/// Dispatches one [`MR`]-row register block under `cfg` (sequential or
/// blocked accumulation only; see [`lhs_pack_applies`]). `f32` blocks use
/// the AVX2/FMA vector micro-kernel when the host supports it, under the
/// same per-lane IEEE-754-equivalence argument as [`dot_tile`].
fn mr_tile<T: Element>(
    cfg: &KernelConfig,
    lhs_block: &[T],
    rows: usize,
    panel: &[T],
) -> [[T; PANEL]; MR] {
    #[cfg(target_arch = "x86_64")]
    if core::any::TypeId::of::<T>() == core::any::TypeId::of::<f32>() && x86::have_fma_simd() {
        // SAFETY: `T` is `f32` (checked above), so the slices reinterpret
        // losslessly and the result transmutes element-for-element; the
        // target features were runtime-detected.
        unsafe {
            let b32 = core::slice::from_raw_parts(lhs_block.as_ptr().cast::<f32>(), lhs_block.len());
            let p32 = core::slice::from_raw_parts(panel.as_ptr().cast::<f32>(), panel.len());
            let tile = x86::mr_tile_f32(cfg, b32, rows, p32);
            return core::mem::transmute_copy(&tile);
        }
    }
    match cfg.accum {
        AccumMode::Sequential => {
            let mut acc = [[T::ZERO; PANEL]; MR];
            seq_mr_tile(lhs_block, rows, panel, cfg.fma, &mut acc);
            acc
        }
        AccumMode::Blocked(kblock) => blocked_mr_tile(kblock, lhs_block, rows, panel, cfg.fma),
        _ => unreachable!("lhs_pack_applies gates the packed-lhs path"),
    }
}

/// Blocked GEMM from a packed lhs into a preallocated buffer, bit-identical
/// to [`gemm_into`] on the unpacked operand at any thread count.
///
/// # Panics
///
/// Panics if `lhs.k() != rhs.k()`, if `out` is not `lhs.m() * rhs.n()`
/// long, or if `cfg` has no packed-lhs micro-kernel
/// (see [`lhs_pack_applies`]).
pub fn gemm_packed_into<T: Element>(
    cfg: &KernelConfig,
    lhs: &PackedLhs<T>,
    rhs: &PackedRhs<T>,
    out: &mut [T],
    threads: usize,
) {
    assert_eq!(lhs.k, rhs.k, "reduction length mismatch");
    assert_eq!(out.len(), lhs.m * rhs.n, "out length mismatch");
    assert!(lhs_pack_applies(cfg), "no packed-lhs kernel for {cfg:?}");
    if rhs.n == 0 {
        return;
    }
    if rhs.k == 0 {
        out.fill(T::ZERO);
        return;
    }
    let (n, k) = (rhs.n, rhs.k);
    let panel_len = k * PANEL;
    par_bands(out, MR * n, threads, |block0, band| {
        for (bi, chunk) in band.chunks_mut(MR * n).enumerate() {
            let block = block0 + bi;
            let rows = chunk.len() / n;
            let lhs_block = &lhs.panels[block * k * MR..(block + 1) * k * MR];
            for (p, panel) in rhs.panels.chunks(panel_len).enumerate() {
                let tile = mr_tile(cfg, lhs_block, rows, panel);
                let col0 = p * PANEL;
                let width = PANEL.min(n - col0);
                for (r, tile_row) in tile.iter().enumerate().take(rows) {
                    chunk[r * n + col0..r * n + col0 + width]
                        .copy_from_slice(&tile_row[..width]);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::MathLib;

    fn all_cfgs() -> Vec<KernelConfig> {
        let mut cfgs = Vec::new();
        for accum in [
            AccumMode::Sequential,
            AccumMode::Pairwise,
            AccumMode::Blocked(1),
            AccumMode::Blocked(7),
            AccumMode::Blocked(32),
            AccumMode::Kahan,
        ] {
            for fma in [false, true] {
                cfgs.push(KernelConfig {
                    accum,
                    fma,
                    math: MathLib::Reference,
                });
            }
        }
        cfgs
    }

    fn ill_conditioned(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
                let sign = if state & 2 == 0 { 1.0 } else { -1.0 };
                (sign * 10f64.powf(unit * 6.0 - 3.0)) as f32
            })
            .collect()
    }

    #[test]
    fn packed_layout_roundtrips() {
        let (k, n) = (5, 11);
        let b: Vec<f32> = (0..k * n).map(|i| i as f32).collect();
        let packed = PackedRhs::from_row_major(&b, k, n);
        assert_eq!(packed.k(), k);
        assert_eq!(packed.n(), n);
        for col in 0..n {
            let p = col / PANEL;
            let j = col % PANEL;
            for kk in 0..k {
                assert_eq!(
                    packed.panels[p * k * PANEL + kk * PANEL + j],
                    b[kk * n + col]
                );
            }
        }
    }

    #[test]
    fn tiles_match_scalar_dot_for_every_mode() {
        for k in [0usize, 1, 2, 3, 7, 8, 31, 33, 97] {
            let a = ill_conditioned(k, 11);
            let n = PANEL + 3;
            let b = ill_conditioned(k * n, 23);
            let packed = PackedRhs::from_row_major(&b, k, n);
            for cfg in all_cfgs() {
                let fast = gemm(&cfg, &a, 1, &packed, 1);
                for col in 0..n {
                    let col_vals: Vec<f32> = (0..k).map(|kk| b[kk * n + col]).collect();
                    let oracle = cfg.dot(&a, &col_vals);
                    assert_eq!(
                        fast[col].to_bits(),
                        oracle.to_bits(),
                        "k={k} col={col} {cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn thread_count_never_changes_bits() {
        let (m, k, n) = (13, 57, 19);
        let a = ill_conditioned(m * k, 5);
        let b = ill_conditioned(k * n, 9);
        let packed = PackedRhs::from_row_major(&b, k, n);
        for cfg in all_cfgs() {
            let one = gemm(&cfg, &a, m, &packed, 1);
            for threads in [2, 3, 8, 64] {
                let many = gemm(&cfg, &a, m, &packed, threads);
                let same = one
                    .iter()
                    .zip(&many)
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "threads={threads} {cfg:?}");
            }
        }
    }

    #[test]
    fn transposed_packing_matches_row_major() {
        let (k, n) = (9, 14);
        let b = ill_conditioned(k * n, 77);
        let bt: Vec<f32> = (0..n * k).map(|i| b[(i % k) * n + i / k]).collect();
        let from_b = PackedRhs::from_row_major(&b, k, n);
        let from_bt = PackedRhs::from_transposed(&bt, n, k);
        assert_eq!(from_b.panels, from_bt.panels);
    }

    #[test]
    fn degenerate_shapes() {
        let cfg = KernelConfig::reference();
        // k = 0: all dots are empty sums.
        let packed = PackedRhs::from_row_major(&[], 0, 4);
        assert_eq!(gemm::<f32>(&cfg, &[], 3, &packed, 2), vec![0.0; 12]);
        // n = 0: empty output.
        let packed = PackedRhs::from_row_major(&[], 5, 0);
        assert!(gemm::<f32>(&cfg, &[1.0; 10], 2, &packed, 2).is_empty());
        // m = 0: empty output.
        let packed = PackedRhs::from_row_major(&[1.0, 2.0], 1, 2);
        assert!(gemm::<f32>(&cfg, &[], 0, &packed, 2).is_empty());
    }

    #[test]
    fn packed_lhs_layout_roundtrips() {
        let (m, k) = (7, 5);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32).collect();
        let lhs = PackedLhs::from_row_major(&a, m, k);
        assert_eq!(lhs.m(), m);
        assert_eq!(lhs.k(), k);
        for row in 0..m {
            let p = row / MR;
            let r = row % MR;
            for kk in 0..k {
                assert_eq!(lhs.panels[p * k * MR + kk * MR + r], a[row * k + kk]);
            }
        }
        // Padded block rows are zero.
        assert_eq!(lhs.panels[(m / MR) * k * MR + m % MR], 0.0);
    }

    #[test]
    fn packed_lhs_matches_row_gemm_bitwise() {
        // Ragged everywhere: m % MR != 0, n % PANEL != 0, odd k.
        let (m, k, n) = (11, 37, 19);
        let a = ill_conditioned(m * k, 3);
        let b = ill_conditioned(k * n, 13);
        let rhs = PackedRhs::from_row_major(&b, k, n);
        let lhs = PackedLhs::from_row_major(&a, m, k);
        for cfg in all_cfgs().into_iter().filter(lhs_pack_applies) {
            let base = gemm(&cfg, &a, m, &rhs, 1);
            for threads in [1usize, 2, 5] {
                let mut out = vec![0f32; m * n];
                gemm_packed_into(&cfg, &lhs, &rhs, &mut out, threads);
                let same = base
                    .iter()
                    .zip(&out)
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "threads={threads} {cfg:?}");
            }
        }
    }

    #[test]
    fn packed_lhs_degenerate_shapes() {
        let cfg = KernelConfig::reference();
        // k = 0: all dots are empty sums.
        let rhs = PackedRhs::from_row_major(&[], 0, 4);
        let lhs = PackedLhs::<f32>::from_row_major(&[], 3, 0);
        let mut out = vec![1.0f32; 12];
        gemm_packed_into(&cfg, &lhs, &rhs, &mut out, 2);
        assert_eq!(out, vec![0.0; 12]);
        // m smaller than one MR block.
        let (m, k, n) = (2, 9, 10);
        let a = ill_conditioned(m * k, 21);
        let b = ill_conditioned(k * n, 22);
        let rhs = PackedRhs::from_row_major(&b, k, n);
        let lhs = PackedLhs::from_row_major(&a, m, k);
        let mut out = vec![0f32; m * n];
        gemm_packed_into(&cfg, &lhs, &rhs, &mut out, 4);
        let base = gemm(&cfg, &a, m, &rhs, 1);
        assert!(base.iter().zip(&out).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn auto_threads_thresholds() {
        assert_eq!(auto_threads(0), 1);
        assert_eq!(auto_threads(PAR_MIN_FLOPS - 1), 1);
        assert!(auto_threads(1 << 24) >= 1);
        assert!(auto_threads(u64::MAX) <= MAX_KERNEL_THREADS);
    }
}
