//! Error types for graph construction and execution.

use core::fmt;

use crate::graph::NodeId;

/// Errors from graph assembly, execution, and subgraph extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// Structural invariant violated (non-dense ids, forward edge, …).
    Malformed(String),
    /// Referenced node id does not exist.
    UnknownNode(NodeId),
    /// Referenced parameter name missing from the state dict.
    MissingParameter(String),
    /// Operator received the wrong number of inputs.
    Arity {
        /// Offending node.
        node: NodeId,
        /// Required input count (or minimum).
        expected: usize,
        /// Actual input count.
        got: usize,
    },
    /// Execution was given the wrong number of graph inputs.
    InputCount {
        /// Declared input count.
        expected: usize,
        /// Provided input count.
        got: usize,
    },
    /// A tensor kernel rejected its operands.
    Tensor(tao_tensor::TensorError),
    /// Gradient requested for an operator without a defined VJP.
    NoGradient(&'static str),
    /// Subgraph range is empty or out of bounds.
    BadRange {
        /// Inclusive start index.
        start: usize,
        /// Exclusive end index.
        end: usize,
        /// Graph size.
        len: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Malformed(m) => write!(f, "malformed graph: {m}"),
            GraphError::UnknownNode(id) => write!(f, "unknown node {id}"),
            GraphError::MissingParameter(name) => write!(f, "missing parameter {name:?}"),
            GraphError::Arity {
                node,
                expected,
                got,
            } => {
                write!(f, "{node}: expected {expected} inputs, got {got}")
            }
            GraphError::InputCount { expected, got } => {
                write!(f, "graph expects {expected} inputs, got {got}")
            }
            GraphError::Tensor(e) => write!(f, "tensor error: {e}"),
            GraphError::NoGradient(op) => write!(f, "no gradient implemented for {op}"),
            GraphError::BadRange { start, end, len } => {
                write!(
                    f,
                    "subgraph range [{start}, {end}) invalid for graph of {len} nodes"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<tao_tensor::TensorError> for GraphError {
    fn from(e: tao_tensor::TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GraphError::UnknownNode(NodeId(3))
            .to_string()
            .contains("%3"));
        assert!(GraphError::Arity {
            node: NodeId(1),
            expected: 2,
            got: 1
        }
        .to_string()
        .contains("expected 2"));
        let te = tao_tensor::TensorError::InvalidArgument("x".into());
        assert!(GraphError::from(te).to_string().contains("tensor error"));
    }
}
