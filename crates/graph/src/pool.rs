//! Buffer-pool forward executor: outputs-only execution with last-use
//! analysis, size-bucketed buffer recycling, and allocation accounting.
//!
//! The trace executor ([`crate::execute`]) is the protocol's workhorse —
//! it *must* keep every node's output alive, because the trace is what the
//! proposer commits to and the dispute localizes over. Plain inference
//! (serving, decode loops, calibration forward passes that only read the
//! outputs) has no such obligation, and the seed executor's costs there
//! were real: every `OpKind::Parameter` deep-copied its weight tensor into
//! the value list, and every intermediate stayed resident until the end of
//! the pass.
//!
//! [`forward`] fixes both. Parameters and inputs are `Arc`-shared into the
//! value list (a refcount bump — `Tensor` storage is copy-on-write), a
//! last-use pass over the op list frees each intermediate at its final
//! consumer, and uniquely-owned freed buffers return to a size-bucketed
//! [`BufferPool`] that subsequent elementwise, GEMM, convolution, softmax
//! and normalization nodes draw from via the tensor layer's `_with_buf`
//! kernels. Those kernels run the identical
//! numeric code paths as their allocating originals, so pooled forward
//! passes are **bit-identical** to [`crate::execute`]'s outputs — asserted
//! by this module's tests and the executor regression suite.
//!
//! [`ExecStats`] exposes the cost ledger (fresh allocations, pool hits,
//! parameter copies, peak resident bytes) so tests can *pin* the
//! contract: zero parameter copies, strictly fewer fresh buffers than the
//! trace executor, and a peak resident set far below keep-everything.

use std::collections::{BTreeMap, HashMap};

use tao_tensor::{Conv2dParams, KernelConfig, Tensor};

use crate::error::GraphError;
use crate::exec::{eval_node, output_shares_storage, ValueObserver};
use crate::graph::{Graph, NodeId};
use crate::op::OpKind;
use crate::Result;

/// Executor cost counters, exposed for regression tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Node outputs that required a fresh heap buffer (not shared with a
    /// parameter/input/predecessor and not drawn from the pool).
    pub fresh_allocations: u64,
    /// Node outputs computed into a buffer recycled from the pool.
    pub pool_hits: u64,
    /// Parameter nodes whose value deep-copied the weight tensor. The
    /// `Arc`-sharing contract pins this to 0.
    pub param_copies: u64,
    /// Peak bytes of live value buffers (each shared buffer counted
    /// once). The trace executor's peak is its total; the pooled executor
    /// frees dead intermediates, so its peak tracks the graph's true
    /// working set.
    pub peak_resident_bytes: u64,
}

/// Tracks the live value buffers by identity so shared buffers (an
/// `Arc`-shared parameter referenced by several nodes, a reshape sharing
/// its producer's storage) count once toward the resident set.
#[derive(Debug, Default)]
struct ResidentSet {
    refs: HashMap<usize, (u64, u64)>, // buffer id -> (bytes, refcount)
    resident: u64,
    peak: u64,
}

impl ResidentSet {
    fn add(&mut self, t: &Tensor<f32>) {
        let bytes = (t.len() * core::mem::size_of::<f32>()) as u64;
        let entry = self.refs.entry(t.buffer_id()).or_insert((bytes, 0));
        if entry.1 == 0 {
            self.resident += entry.0;
        }
        entry.1 += 1;
        self.peak = self.peak.max(self.resident);
    }

    fn remove(&mut self, t: &Tensor<f32>) {
        if let Some(entry) = self.refs.get_mut(&t.buffer_id()) {
            entry.1 = entry.1.saturating_sub(1);
            if entry.1 == 0 {
                self.resident -= entry.0;
                // Evict the dead entry: the allocator can hand a later
                // buffer the same address, and a stale `(bytes, 0)` record
                // would charge the old size for the new buffer.
                self.refs.remove(&t.buffer_id());
            }
        }
    }
}

/// A size-bucketed pool of reusable `f32` buffers, keyed by capacity.
///
/// [`forward`] returns each dead intermediate's buffer here (when no other
/// tensor shares it) and draws the smallest buffer that fits the next
/// pooled node's output estimate. Capacity reuse is a pure allocation
/// optimization: the `_with_buf` kernels produce identical bits whether
/// the buffer is fresh or recycled.
#[derive(Debug, Default)]
pub struct BufferPool {
    buckets: BTreeMap<usize, Vec<Vec<f32>>>,
    held: usize,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the smallest pooled buffer with capacity at least `len`.
    pub fn take(&mut self, len: usize) -> Option<Vec<f32>> {
        let key = *self.buckets.range(len.max(1)..).next().map(|(k, _)| k)?;
        let bucket = self.buckets.get_mut(&key)?;
        let buf = bucket.pop()?;
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
        self.held -= 1;
        Some(buf)
    }

    /// Returns a buffer to the pool.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        self.held += 1;
        self.buckets.entry(buf.capacity()).or_default().push(buf);
    }

    /// Number of buffers currently held.
    pub fn len(&self) -> usize {
        self.held
    }

    /// True when the pool holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.held == 0
    }

    /// Total bytes of pooled capacity.
    pub fn held_bytes(&self) -> u64 {
        self.buckets
            .iter()
            .map(|(cap, bucket)| (cap * bucket.len() * core::mem::size_of::<f32>()) as u64)
            .sum()
    }
}

/// Last node index at which each value is read (its own index when never
/// read); graph outputs are pinned live to the end.
fn last_uses(graph: &Graph) -> Vec<usize> {
    let mut last = (0..graph.len()).collect::<Vec<usize>>();
    for node in graph.nodes() {
        for &input in &node.inputs {
            last[input.0] = node.id.0;
        }
    }
    for &out in graph.outputs() {
        last[out.0] = usize::MAX;
    }
    last
}

/// Output-length estimate for the pooled kernels (a heuristic for pool
/// sizing only — the `_with_buf` kernels resize as needed, so a wrong
/// estimate can never affect results).
fn pooled_len_estimate(node: &OpKind, a: &Tensor<f32>, b: Option<&Tensor<f32>>) -> usize {
    match node {
        OpKind::MatMul | OpKind::QuantMatmul => {
            let b = b.expect("matmul has two inputs");
            let k = a.dims().last().copied().unwrap_or(1).max(1);
            let n = b.dims().last().copied().unwrap_or(0);
            (a.len() / k) * n
        }
        OpKind::Linear | OpKind::QuantLinear => {
            let w = b.expect("linear has a weight");
            let in_f = w.dims().last().copied().unwrap_or(1).max(1);
            let out_f = w.dims().first().copied().unwrap_or(0);
            (a.len() / in_f) * out_f
        }
        OpKind::Conv2d { stride, padding } => {
            let w = b.expect("conv2d has a weight");
            if a.rank() != 4 || w.rank() != 4 {
                return 0;
            }
            let params = Conv2dParams {
                stride: *stride,
                padding: *padding,
            };
            let (n, h, wd) = (a.dims()[0], a.dims()[2], a.dims()[3]);
            let (c_out, kh, kw) = (w.dims()[0], w.dims()[2], w.dims()[3]);
            match (params.out_extent(h, kh), params.out_extent(wd, kw)) {
                (Some(oh), Some(ow)) => n * c_out * oh * ow,
                _ => 0,
            }
        }
        // Binary elementwise: the broadcast output volume (0 on
        // incompatible shapes — the kernel will error before the buffer
        // matters).
        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div => {
            let b = b.expect("binary op has two inputs");
            a.shape()
                .broadcast(b.shape())
                .map(|s| s.volume())
                .unwrap_or(0)
        }
        _ => a.len(),
    }
}

/// Executes `graph` on `inputs`, returning only the declared outputs.
///
/// Semantically identical to running [`crate::execute`] and collecting
/// [`crate::Execution::outputs`] — every value is computed by the same
/// kernels in the same order — but parameters are `Arc`-shared instead of
/// copied, dead intermediates are freed at their last use, and their
/// buffers are recycled through `pool` into later elementwise and GEMM
/// nodes.
///
/// # Errors
///
/// Same error conditions as [`crate::execute`].
pub fn forward(
    graph: &Graph,
    inputs: &[Tensor<f32>],
    cfg: &KernelConfig,
    pool: &mut BufferPool,
) -> Result<Vec<Tensor<f32>>> {
    forward_with_stats(graph, inputs, cfg, pool).map(|(outputs, _)| outputs)
}

/// [`forward`] plus the executor cost ledger.
///
/// # Errors
///
/// Same error conditions as [`crate::execute`].
pub fn forward_with_stats(
    graph: &Graph,
    inputs: &[Tensor<f32>],
    cfg: &KernelConfig,
    pool: &mut BufferPool,
) -> Result<(Vec<Tensor<f32>>, ExecStats)> {
    forward_inner(graph, inputs, cfg, pool, None)
}

/// [`forward`] with a [`ValueObserver`] receiving every node's final value
/// exactly once — each dead intermediate is handed to the observer's
/// [`ValueObserver::observe_retired`] at the moment the last-use analysis
/// retires it, *by value together with the pool*: the observer digests the
/// tensor without cloning and returns the buffer to the pool itself (the
/// background hasher does so after the worker thread finishes with it).
/// Values still live at the end of the pass (graph outputs, never-read
/// nodes) are observed by reference in a final id-order sweep. This is the
/// streamed-commitment hook: hashing overlaps the remaining compute
/// instead of running as a post-hoc pass, and retired buffers flow
/// observer → pool with no copy on the retirement path.
///
/// Observation order follows retirement order, not node order; observers
/// key on the `NodeId` they are handed.
///
/// # Errors
///
/// Same error conditions as [`crate::execute`].
pub fn forward_observed(
    graph: &Graph,
    inputs: &[Tensor<f32>],
    cfg: &KernelConfig,
    pool: &mut BufferPool,
    observer: &mut dyn ValueObserver,
) -> Result<Vec<Tensor<f32>>> {
    forward_inner(graph, inputs, cfg, pool, Some(observer)).map(|(outputs, _)| outputs)
}

/// [`forward_observed`] plus the executor cost ledger, so callers can pin
/// that observation does not change the pool economics (the streamed
/// committer hands every retired buffer back; warm-pass `pool_hits` match
/// the unobserved executor exactly).
///
/// # Errors
///
/// Same error conditions as [`crate::execute`].
pub fn forward_observed_with_stats(
    graph: &Graph,
    inputs: &[Tensor<f32>],
    cfg: &KernelConfig,
    pool: &mut BufferPool,
    observer: &mut dyn ValueObserver,
) -> Result<(Vec<Tensor<f32>>, ExecStats)> {
    forward_inner(graph, inputs, cfg, pool, Some(observer))
}

fn forward_inner(
    graph: &Graph,
    inputs: &[Tensor<f32>],
    cfg: &KernelConfig,
    pool: &mut BufferPool,
    mut observer: Option<&mut dyn ValueObserver>,
) -> Result<(Vec<Tensor<f32>>, ExecStats)> {
    if inputs.len() != graph.num_inputs() {
        return Err(GraphError::InputCount {
            expected: graph.num_inputs(),
            got: inputs.len(),
        });
    }
    let last = last_uses(graph);
    // Invert: which value ids die right after node i.
    let mut free_at: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
    for (id, &l) in last.iter().enumerate() {
        if l != usize::MAX && l != id {
            free_at[l].push(id);
        }
    }
    let mut stats = ExecStats::default();
    let mut resident = ResidentSet::default();
    let mut observed = vec![false; if observer.is_some() { graph.len() } else { 0 }];
    // Freed slots are replaced by clones of this empty tensor (an Arc
    // bump, no allocation).
    let empty = Tensor::<f32>::zeros(&[0]);
    let mut values: Vec<Tensor<f32>> = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let arg = |k: usize| &values[node.inputs[k].0];
        let mut from_pool = false;
        let take = |len: usize, pool: &mut BufferPool, from_pool: &mut bool| -> Vec<f32> {
            match pool.take(len) {
                Some(buf) => {
                    *from_pool = true;
                    buf
                }
                None => Vec::new(),
            }
        };
        let out: Tensor<f32> = match &node.kind {
            // Structural values share storage outright.
            OpKind::Parameter(name) => {
                let p = graph.param(name)?;
                let v = p.clone();
                if !v.shares_buffer(p) {
                    stats.param_copies += 1;
                }
                v
            }
            OpKind::Input(idx) => inputs.get(*idx).cloned().ok_or(GraphError::InputCount {
                expected: idx + 1,
                got: inputs.len(),
            })?,
            OpKind::Identity if node.inputs.len() == 1 => arg(0).clone(),
            // Pooled kernels: identical numeric paths, recycled buffers.
            OpKind::Add if node.inputs.len() == 2 => {
                let estimate = pooled_len_estimate(&node.kind, arg(0), Some(arg(1)));
                let buf = take(estimate, pool, &mut from_pool);
                arg(0).add_with_buf(arg(1), buf)?
            }
            OpKind::Sub if node.inputs.len() == 2 => {
                let estimate = pooled_len_estimate(&node.kind, arg(0), Some(arg(1)));
                let buf = take(estimate, pool, &mut from_pool);
                arg(0).sub_with_buf(arg(1), buf)?
            }
            OpKind::Mul if node.inputs.len() == 2 => {
                let estimate = pooled_len_estimate(&node.kind, arg(0), Some(arg(1)));
                let buf = take(estimate, pool, &mut from_pool);
                arg(0).mul_with_buf(arg(1), buf)?
            }
            OpKind::Div if node.inputs.len() == 2 => {
                let estimate = pooled_len_estimate(&node.kind, arg(0), Some(arg(1)));
                let buf = take(estimate, pool, &mut from_pool);
                arg(0).div_with_buf(arg(1), buf)?
            }
            OpKind::Neg if node.inputs.len() == 1 => {
                let buf = take(arg(0).len(), pool, &mut from_pool);
                arg(0).neg_with_buf(buf)
            }
            OpKind::AddScalar(s) if node.inputs.len() == 1 => {
                let buf = take(arg(0).len(), pool, &mut from_pool);
                arg(0).add_scalar_with_buf(*s as f32, buf)
            }
            OpKind::MulScalar(s) if node.inputs.len() == 1 => {
                let buf = take(arg(0).len(), pool, &mut from_pool);
                arg(0).mul_scalar_with_buf(*s as f32, buf)
            }
            OpKind::Relu if node.inputs.len() == 1 => {
                let buf = take(arg(0).len(), pool, &mut from_pool);
                arg(0).relu_with_buf(buf)
            }
            OpKind::MatMul if node.inputs.len() == 2 => {
                let estimate = pooled_len_estimate(&node.kind, arg(0), Some(arg(1)));
                let buf = take(estimate, pool, &mut from_pool);
                arg(0).matmul_with_buf(arg(1), cfg, buf)?
            }
            OpKind::Linear if node.inputs.len() >= 2 => {
                let bias = (node.inputs.len() == 3).then(|| arg(2));
                let estimate = pooled_len_estimate(&node.kind, arg(0), Some(arg(1)));
                let buf = take(estimate, pool, &mut from_pool);
                arg(0).linear_with_buf(arg(1), bias, cfg, buf)?
            }
            OpKind::Conv2d { stride, padding } if node.inputs.len() >= 2 => {
                let bias = (node.inputs.len() == 3).then(|| arg(2));
                let estimate = pooled_len_estimate(&node.kind, arg(0), Some(arg(1)));
                let buf = take(estimate, pool, &mut from_pool);
                let params = Conv2dParams {
                    stride: *stride,
                    padding: *padding,
                };
                arg(0).conv2d_with_buf(arg(1), bias, params, cfg, buf)?
            }
            OpKind::QuantMatmul if node.inputs.len() == 2 => {
                let estimate = pooled_len_estimate(&node.kind, arg(0), Some(arg(1)));
                let buf = take(estimate, pool, &mut from_pool);
                arg(0).quant_matmul_with_buf(arg(1), buf)?
            }
            OpKind::QuantLinear if node.inputs.len() >= 2 => {
                let bias = (node.inputs.len() == 3).then(|| arg(2));
                let estimate = pooled_len_estimate(&node.kind, arg(0), Some(arg(1)));
                let buf = take(estimate, pool, &mut from_pool);
                arg(0).quant_linear_with_buf(arg(1), bias, buf)?
            }
            OpKind::Quantize { scale } if node.inputs.len() == 1 => {
                let buf = take(arg(0).len(), pool, &mut from_pool);
                arg(0).quantize_static_with_buf(*scale, buf)?
            }
            OpKind::Dequantize { scale } if node.inputs.len() == 1 => {
                let buf = take(arg(0).len(), pool, &mut from_pool);
                arg(0).dequantize_static_with_buf(*scale, buf)?
            }
            OpKind::Softmax if node.inputs.len() == 1 => {
                let buf = take(arg(0).len(), pool, &mut from_pool);
                arg(0).softmax_last_with_buf(cfg, buf)?
            }
            OpKind::LayerNorm { eps } if node.inputs.len() == 3 => {
                let buf = take(arg(0).len(), pool, &mut from_pool);
                arg(0).layer_norm_with_buf(arg(1), arg(2), *eps, cfg, buf)?
            }
            OpKind::RmsNorm { eps } if node.inputs.len() == 2 => {
                let buf = take(arg(0).len(), pool, &mut from_pool);
                arg(0).rms_norm_with_buf(arg(1), *eps, cfg, buf)?
            }
            // Everything else runs the trace executor's kernel unchanged.
            _ => eval_node(graph, node, &values, inputs, cfg)?,
        };
        if from_pool {
            stats.pool_hits += 1;
        } else if !output_shares_storage(graph, node, inputs, &values, &out) {
            stats.fresh_allocations += 1;
        }
        resident.add(&out);
        values.push(out);
        // Free every value whose last consumer was this node. With an
        // observer attached, the retired tensor is handed over whole
        // (`observe_retired` owns returning the buffer to the pool — see
        // the trait docs); otherwise uniquely owned buffers go straight
        // back to the pool.
        for &id in &free_at[node.id.0] {
            let dead = core::mem::replace(&mut values[id], empty.clone());
            resident.remove(&dead);
            match observer.as_deref_mut() {
                Some(obs) => {
                    obs.observe_retired(NodeId(id), dead, pool);
                    observed[id] = true;
                }
                None => {
                    if let Some(buf) = dead.into_unique_data() {
                        pool.give(buf);
                    }
                }
            }
        }
    }
    stats.peak_resident_bytes = resident.peak;
    // Values never retired by the loop — graph outputs (pinned live) and
    // never-read nodes — get observed in a final id-order sweep so the
    // exactly-once contract holds for every node.
    if let Some(obs) = observer {
        for (id, seen) in observed.iter().enumerate() {
            if !seen {
                obs.observe(NodeId(id), &values[id]);
            }
        }
    }
    let outputs = graph
        .outputs()
        .iter()
        .map(|&id| values[id.0].clone())
        .collect();
    Ok((outputs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::exec::execute;

    fn mlp() -> (Graph, Vec<Tensor<f32>>) {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w1 = b.parameter("w1", Tensor::<f32>::rand_uniform(&[16, 16], -0.5, 0.5, 1));
        let b1 = b.parameter("b1", Tensor::<f32>::rand_uniform(&[16], -0.5, 0.5, 2));
        let h = b.op("fc1", OpKind::Linear, &[x, w1, b1]);
        let r = b.op("relu", OpKind::Relu, &[h]);
        let w2 = b.parameter("w2", Tensor::<f32>::rand_uniform(&[16, 16], -0.5, 0.5, 3));
        let m = b.op("mm", OpKind::MatMul, &[r, w2]);
        let a = b.op("res", OpKind::Add, &[m, x]);
        let s = b.op("scale", OpKind::MulScalar(0.5), &[a]);
        let g = b.finish(vec![s]).unwrap();
        let inputs = vec![Tensor::<f32>::rand_uniform(&[4, 16], -1.0, 1.0, 9)];
        (g, inputs)
    }

    #[test]
    fn pooled_forward_is_bit_identical_to_trace_execute() {
        let (g, inputs) = mlp();
        let cfg = KernelConfig::reference();
        let trace = execute(&g, &inputs, &cfg, None).unwrap();
        let mut pool = BufferPool::new();
        // Two passes: the second draws from the pool filled by the first.
        for pass in 0..2 {
            let (outputs, stats) = forward_with_stats(&g, &inputs, &cfg, &mut pool).unwrap();
            assert_eq!(outputs.len(), 1);
            let want = trace.outputs(&g);
            for (got, want) in outputs.iter().zip(&want) {
                assert_eq!(got.dims(), want.dims());
                let same = got
                    .data()
                    .iter()
                    .zip(want.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "pass {pass}: pooled output drifted");
            }
            assert_eq!(stats.param_copies, 0, "pass {pass}");
            if pass == 1 {
                assert!(stats.pool_hits > 0, "second pass must reuse buffers");
            }
        }
    }

    #[test]
    fn pool_buckets_by_capacity() {
        let mut pool = BufferPool::new();
        assert!(pool.is_empty());
        pool.give(Vec::with_capacity(64));
        pool.give(Vec::with_capacity(256));
        assert_eq!(pool.len(), 2);
        assert!(pool.held_bytes() >= (64 + 256) * 4);
        // Smallest sufficient bucket wins.
        let b = pool.take(60).unwrap();
        assert!(b.capacity() >= 64 && b.capacity() < 256);
        assert!(pool.take(1024).is_none());
        assert_eq!(pool.len(), 1);
        // Zero-capacity buffers are not worth holding.
        pool.give(Vec::new());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn last_use_analysis_pins_outputs() {
        let (g, _) = mlp();
        let last = last_uses(&g);
        for &out in g.outputs() {
            assert_eq!(last[out.0], usize::MAX);
        }
        // The input feeds the residual add, so it must stay live past fc1.
        assert!(last[0] > 3);
    }

    #[test]
    fn input_count_checked() {
        let (g, _) = mlp();
        let mut pool = BufferPool::new();
        assert!(forward(&g, &[], &KernelConfig::reference(), &mut pool).is_err());
    }
}
