//! # tao-graph
//!
//! Operator-level dataflow graphs for the TAO verification stack: a
//! tracing-style builder (the `torch.fx` role), a topological executor with
//! per-operator tracing and perturbation hooks, verifiable subgraph
//! extraction with live-in/live-out frontiers, FLOP accounting, and
//! reverse-mode autodiff for the bound-aware attacks.
//!
//! # Examples
//!
//! ```
//! use tao_graph::{execute, GraphBuilder, OpKind};
//! use tao_tensor::{KernelConfig, Tensor};
//!
//! let mut b = GraphBuilder::new(1);
//! let x = b.input(0, "x");
//! let w = b.parameter("w", Tensor::<f32>::eye(2));
//! let y = b.op("y", OpKind::MatMul, &[x, w]);
//! let graph = b.finish(vec![y]).unwrap();
//!
//! let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let exec = execute(&graph, &[input.clone()], &KernelConfig::reference(), None).unwrap();
//! assert_eq!(exec.outputs(&graph)[0].data(), input.data());
//! ```

pub mod autodiff;
pub mod builder;
pub mod error;
pub mod exec;
pub mod graph;
pub mod op;
pub mod pool;
pub mod subgraph;

pub use autodiff::{backward, Gradients};
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use exec::{
    eval_node, execute, execute_observed, execute_with_stats, Execution, Perturbations,
    ValueObserver,
};
pub use graph::{Graph, Node, NodeId};
pub use op::OpKind;
pub use pool::{
    forward, forward_observed, forward_observed_with_stats, forward_with_stats, BufferPool,
    ExecStats,
};
pub use subgraph::{execute_subgraph, extract, partition, Subgraph};

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, GraphError>;
