//! Topological graph executor with per-operator tracing.

use std::collections::HashMap;

use tao_tensor::{KernelConfig, Tensor};

use crate::error::GraphError;
use crate::graph::{Graph, Node, NodeId};
use crate::op::OpKind;
use crate::Result;

/// A complete execution trace: every node's output tensor plus FLOP counts.
///
/// The trace is what the proposer commits to (via per-operator I/O hashes)
/// and what the challenger compares against during dispute localization.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Output tensor of every node, indexed by node id.
    pub values: Vec<Tensor<f32>>,
    /// FLOPs attributed to every node, indexed by node id.
    pub flops: Vec<u64>,
}

impl Execution {
    /// Output of a node.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range id.
    pub fn value(&self, id: NodeId) -> Result<&Tensor<f32>> {
        self.values.get(id.0).ok_or(GraphError::UnknownNode(id))
    }

    /// Graph output tensors, in declaration order.
    pub fn outputs(&self, graph: &Graph) -> Vec<Tensor<f32>> {
        graph
            .outputs()
            .iter()
            .map(|&id| self.values[id.0].clone())
            .collect()
    }

    /// Total FLOPs of the execution.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().sum()
    }
}

/// Additive perturbations injected after selected operators — the paper's
/// adversary model (`h_v <- h_v + Δ_v`).
pub type Perturbations = HashMap<NodeId, Tensor<f32>>;

/// Observes every node's final output value exactly once during an
/// execution pass — the streamed-commitment hook.
///
/// Both executors guarantee the same contract: `observe` fires once per
/// node with the node's *final* value (perturbations applied), while the
/// tensor is still alive. The trace executor observes in node order; the
/// pooled executor observes each value when the buffer pool's last-use
/// analysis retires it (so hashing overlaps the remaining compute), with
/// node order **not** guaranteed. Observers must therefore key on the
/// `NodeId`, never on arrival order.
pub trait ValueObserver {
    /// Called exactly once per node with its final output value.
    fn observe(&mut self, id: NodeId, value: &Tensor<f32>);

    /// Called by the pooled executor instead of [`observe`](Self::observe)
    /// when a value is *retired* (its last consumer has run): the observer
    /// takes ownership of the tensor and is responsible for returning its
    /// buffer to `pool` once it no longer needs the data.
    ///
    /// The default forwards to [`observe`](Self::observe) and recycles the
    /// buffer immediately. Observers that defer work on the value (e.g. a
    /// background hashing thread) override this to hand the owned buffer
    /// to the worker and route it back into the pool after digesting,
    /// instead of cloning the tensor and letting the clone defeat the
    /// uniqueness check that feeds the pool.
    fn observe_retired(
        &mut self,
        id: NodeId,
        value: Tensor<f32>,
        pool: &mut crate::pool::BufferPool,
    ) {
        self.observe(id, &value);
        if let Some(buf) = value.into_unique_data() {
            pool.give(buf);
        }
    }
}

/// Executes `graph` on `inputs` under `cfg`, optionally injecting additive
/// perturbations after selected node outputs.
///
/// # Errors
///
/// Returns an error on input-count mismatch, arity violations, or kernel
/// shape errors.
pub fn execute(
    graph: &Graph,
    inputs: &[Tensor<f32>],
    cfg: &KernelConfig,
    perturb: Option<&Perturbations>,
) -> Result<Execution> {
    execute_with_stats(graph, inputs, cfg, perturb).map(|(exec, _)| exec)
}

/// [`execute`] with a [`ValueObserver`] receiving every node's final value
/// as it is produced — the streamed-commitment entry point for traced
/// execution (each value is hashed while the next node computes, instead
/// of in a post-hoc pass over the finished trace).
///
/// # Errors
///
/// Same error conditions as [`execute`].
pub fn execute_observed(
    graph: &Graph,
    inputs: &[Tensor<f32>],
    cfg: &KernelConfig,
    perturb: Option<&Perturbations>,
    observer: &mut dyn ValueObserver,
) -> Result<Execution> {
    execute_inner(graph, inputs, cfg, perturb, Some(observer)).map(|(exec, _)| exec)
}

/// [`execute`] plus the executor cost ledger ([`crate::ExecStats`]).
///
/// The trace executor keeps every value alive by design (the trace is the
/// committed artifact), so its peak resident set equals its total; the
/// interesting counters here are `param_copies` — pinned to 0 by the
/// `Arc`-sharing contract — and `fresh_allocations`, the baseline the
/// pooled [`crate::forward`] executor is measured against.
///
/// # Errors
///
/// Same error conditions as [`execute`].
pub fn execute_with_stats(
    graph: &Graph,
    inputs: &[Tensor<f32>],
    cfg: &KernelConfig,
    perturb: Option<&Perturbations>,
) -> Result<(Execution, crate::ExecStats)> {
    execute_inner(graph, inputs, cfg, perturb, None)
}

fn execute_inner(
    graph: &Graph,
    inputs: &[Tensor<f32>],
    cfg: &KernelConfig,
    perturb: Option<&Perturbations>,
    mut observer: Option<&mut dyn ValueObserver>,
) -> Result<(Execution, crate::ExecStats)> {
    if inputs.len() != graph.num_inputs() {
        return Err(GraphError::InputCount {
            expected: graph.num_inputs(),
            got: inputs.len(),
        });
    }
    let mut stats = crate::ExecStats::default();
    let mut values: Vec<Tensor<f32>> = Vec::with_capacity(graph.len());
    let mut flops = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let mut out = eval_node(graph, node, &values, inputs, cfg)?;
        if let Some(p) = perturb {
            if let Some(delta) = p.get(&node.id) {
                out = out.add(delta)?;
            }
        }
        if let OpKind::Parameter(name) = &node.kind {
            if !out.shares_buffer(graph.param(name)?) {
                stats.param_copies += 1;
            }
        }
        if !output_shares_storage(graph, node, inputs, &values, &out) {
            stats.fresh_allocations += 1;
        }
        let in_shapes: Vec<_> = node.inputs.iter().map(|&i| values[i.0].shape()).collect();
        flops.push(node.kind.flops(&in_shapes, out.shape()));
        if let Some(obs) = observer.as_deref_mut() {
            obs.observe(node.id, &out);
        }
        values.push(out);
    }
    // The trace keeps every value alive, so the peak resident set is the
    // final one. Summing after the loop — with every buffer still live —
    // also makes the pointer-identity dedup exact: no freed address can
    // have been reused by a later allocation.
    let mut seen = std::collections::HashSet::new();
    stats.peak_resident_bytes = values
        .iter()
        .filter(|v| seen.insert(v.buffer_id()))
        .map(|v| (v.len() * core::mem::size_of::<f32>()) as u64)
        .sum();
    Ok((Execution { values, flops }, stats))
}

/// True when `out` aliases the storage of one of `node`'s operands: an
/// input value, the graph's own parameter tensor, or a graph input. The
/// shared definition of "not a fresh allocation" for both executors'
/// [`crate::ExecStats::fresh_allocations`] ledgers.
pub(crate) fn output_shares_storage(
    graph: &Graph,
    node: &Node,
    inputs: &[Tensor<f32>],
    values: &[Tensor<f32>],
    out: &Tensor<f32>,
) -> bool {
    node.inputs.iter().any(|&i| out.shares_buffer(&values[i.0]))
        || matches!(&node.kind, OpKind::Parameter(name)
            if graph.param(name).map(|p| out.shares_buffer(p)).unwrap_or(false))
        || matches!(node.kind, OpKind::Input(idx)
            if inputs.get(idx).map(|t| out.shares_buffer(t)).unwrap_or(false))
}

/// Evaluates a single node given already-computed predecessor values.
///
/// Exposed for leaf re-execution during single-operator adjudication: the
/// committee calls this with the committed inputs of the disputed operator.
///
/// # Errors
///
/// Returns an error on arity violations or kernel shape errors.
pub fn eval_node(
    graph: &Graph,
    node: &Node,
    values: &[Tensor<f32>],
    inputs: &[Tensor<f32>],
    cfg: &KernelConfig,
) -> Result<Tensor<f32>> {
    let arg = |k: usize| -> Result<&Tensor<f32>> {
        let id = *node.inputs.get(k).ok_or(GraphError::Arity {
            node: node.id,
            expected: k + 1,
            got: node.inputs.len(),
        })?;
        values.get(id.0).ok_or(GraphError::UnknownNode(id))
    };
    let need = |n: usize| -> Result<()> {
        if node.inputs.len() != n {
            return Err(GraphError::Arity {
                node: node.id,
                expected: n,
                got: node.inputs.len(),
            });
        }
        Ok(())
    };
    let out = match &node.kind {
        OpKind::Input(idx) => inputs.get(*idx).cloned().ok_or(GraphError::InputCount {
            expected: idx + 1,
            got: inputs.len(),
        })?,
        OpKind::Parameter(name) => graph.param(name)?.clone(),
        OpKind::Add => {
            need(2)?;
            arg(0)?.add(arg(1)?)?
        }
        OpKind::Sub => {
            need(2)?;
            arg(0)?.sub(arg(1)?)?
        }
        OpKind::Mul => {
            need(2)?;
            arg(0)?.mul(arg(1)?)?
        }
        OpKind::Div => {
            need(2)?;
            arg(0)?.div(arg(1)?)?
        }
        OpKind::Pow => {
            need(2)?;
            arg(0)?.pow(arg(1)?)?
        }
        OpKind::Neg => {
            need(1)?;
            arg(0)?.neg()
        }
        OpKind::AddScalar(s) => {
            need(1)?;
            arg(0)?.add_scalar(*s as f32)
        }
        OpKind::MulScalar(s) => {
            need(1)?;
            arg(0)?.mul_scalar(*s as f32)
        }
        OpKind::PowScalar(p) => {
            need(1)?;
            arg(0)?.pow_scalar(*p as f32)
        }
        OpKind::Sqrt => {
            need(1)?;
            arg(0)?.sqrt()
        }
        OpKind::Rsqrt => {
            need(1)?;
            arg(0)?.rsqrt(cfg)
        }
        OpKind::Exp => {
            need(1)?;
            arg(0)?.exp(cfg)
        }
        OpKind::Log => {
            need(1)?;
            arg(0)?.ln(cfg)
        }
        OpKind::Sin => {
            need(1)?;
            arg(0)?.sin()
        }
        OpKind::Cos => {
            need(1)?;
            arg(0)?.cos()
        }
        OpKind::Tanh => {
            need(1)?;
            arg(0)?.tanh(cfg)
        }
        OpKind::Relu => {
            need(1)?;
            arg(0)?.relu()
        }
        OpKind::Gelu => {
            need(1)?;
            arg(0)?.gelu(cfg)
        }
        OpKind::Silu => {
            need(1)?;
            arg(0)?.silu(cfg)
        }
        OpKind::Sigmoid => {
            need(1)?;
            arg(0)?.sigmoid(cfg)
        }
        OpKind::Softmax => {
            need(1)?;
            arg(0)?.softmax_last(cfg)?
        }
        OpKind::LayerNorm { eps } => {
            need(3)?;
            arg(0)?.layer_norm(arg(1)?, arg(2)?, *eps, cfg)?
        }
        OpKind::RmsNorm { eps } => {
            need(2)?;
            arg(0)?.rms_norm(arg(1)?, *eps, cfg)?
        }
        OpKind::BatchNorm2d { eps } => {
            need(5)?;
            arg(0)?.batch_norm2d(arg(1)?, arg(2)?, arg(3)?, arg(4)?, *eps, cfg)?
        }
        OpKind::GroupNorm { groups, eps } => {
            need(3)?;
            arg(0)?.group_norm(*groups, arg(1)?, arg(2)?, *eps, cfg)?
        }
        OpKind::MatMul => {
            need(2)?;
            arg(0)?.matmul(arg(1)?, cfg)?
        }
        OpKind::Linear => {
            let bias = if node.inputs.len() == 3 {
                Some(arg(2)?)
            } else {
                need(2)?;
                None
            };
            arg(0)?.linear(arg(1)?, bias, cfg)?
        }
        OpKind::Conv2d { stride, padding } => {
            let bias = if node.inputs.len() == 3 {
                Some(arg(2)?)
            } else {
                need(2)?;
                None
            };
            arg(0)?.conv2d(
                arg(1)?,
                bias,
                tao_tensor::Conv2dParams {
                    stride: *stride,
                    padding: *padding,
                },
                cfg,
            )?
        }
        OpKind::QuantMatmul => {
            need(2)?;
            arg(0)?.quant_matmul(arg(1)?)?
        }
        OpKind::QuantLinear => {
            let bias = if node.inputs.len() == 3 {
                Some(arg(2)?)
            } else {
                need(2)?;
                None
            };
            arg(0)?.quant_linear(arg(1)?, bias)?
        }
        OpKind::Quantize { scale } => {
            need(1)?;
            arg(0)?.quantize_static(*scale)?
        }
        OpKind::Dequantize { scale } => {
            need(1)?;
            arg(0)?.dequantize_static(*scale)?
        }
        OpKind::MeanAll => {
            need(1)?;
            Tensor::scalar(arg(0)?.mean_all(cfg))
        }
        OpKind::SumAll => {
            need(1)?;
            Tensor::scalar(arg(0)?.sum_all(cfg))
        }
        OpKind::SumAxis(axis) => {
            need(1)?;
            arg(0)?.sum_axis(*axis, cfg)?
        }
        OpKind::MeanAxis(axis) => {
            need(1)?;
            arg(0)?.mean_axis(*axis, cfg)?
        }
        OpKind::MaxAxis(axis) => {
            need(1)?;
            arg(0)?.max_axis(*axis)?
        }
        OpKind::MaxPool2d { kernel, stride } => {
            need(1)?;
            arg(0)?.max_pool2d(*kernel, *stride)?
        }
        OpKind::AvgPool2d { kernel, stride } => {
            need(1)?;
            arg(0)?.avg_pool2d(*kernel, *stride, cfg)?
        }
        OpKind::AdaptiveAvgPool1x1 => {
            need(1)?;
            arg(0)?.adaptive_avg_pool2d_1x1(cfg)?
        }
        OpKind::UpsampleNearest(factor) => {
            need(1)?;
            arg(0)?.upsample_nearest2x(*factor)?
        }
        OpKind::Reshape(dims) => {
            need(1)?;
            arg(0)?.reshape(dims)?
        }
        OpKind::Flatten => {
            need(1)?;
            arg(0)?.flatten()
        }
        OpKind::FlattenFrom(axis) => {
            need(1)?;
            let t = arg(0)?;
            let keep: Vec<usize> = t.dims()[..*axis].to_vec();
            let rest: usize = t.dims()[*axis..].iter().product();
            let mut dims = keep;
            dims.push(rest);
            t.reshape(&dims)?
        }
        OpKind::Transpose(a, b) => {
            need(1)?;
            arg(0)?.transpose(*a, *b)?
        }
        OpKind::Permute(perm) => {
            need(1)?;
            arg(0)?.permute(perm)?
        }
        OpKind::Slice { axis, start, end } => {
            need(1)?;
            arg(0)?.slice(*axis, *start, *end)?
        }
        OpKind::Concat(axis) => {
            if node.inputs.is_empty() {
                return Err(GraphError::Arity {
                    node: node.id,
                    expected: 1,
                    got: 0,
                });
            }
            let tensors: Vec<&Tensor<f32>> = node.inputs.iter().map(|&i| &values[i.0]).collect();
            Tensor::cat(&tensors, *axis)?
        }
        OpKind::Embedding => {
            need(2)?;
            let ids: Vec<usize> = arg(1)?
                .data()
                .iter()
                .map(|&x| x.max(0.0).round() as usize)
                .collect();
            arg(0)?.embedding(&ids)?
        }
        OpKind::MaskedFill(value) => {
            need(2)?;
            arg(0)?.masked_fill(arg(1)?, *value as f32)?
        }
        OpKind::Identity => {
            need(1)?;
            arg(0)?.clone()
        }
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn executes_linear_chain() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", Tensor::<f32>::eye(2));
        let y = b.op("y", OpKind::MatMul, &[x, w]);
        let z = b.op("z", OpKind::Relu, &[y]);
        let g = b.finish(vec![z]).unwrap();
        let input = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2]).unwrap();
        let exec = execute(&g, &[input], &KernelConfig::reference(), None).unwrap();
        assert_eq!(exec.outputs(&g)[0].data(), &[1.0, 0.0, 3.0, 0.0]);
        assert!(exec.total_flops() > 0);
    }

    #[test]
    fn input_count_checked() {
        let mut b = GraphBuilder::new(2);
        let x = b.input(0, "x");
        let g = b.finish(vec![x]).unwrap();
        assert!(execute(&g, &[Tensor::ones(&[1])], &KernelConfig::reference(), None).is_err());
    }

    #[test]
    fn perturbation_injected_after_node() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let y = b.op("y", OpKind::MulScalar(2.0), &[x]);
        let z = b.op("z", OpKind::AddScalar(0.0), &[y]);
        let g = b.finish(vec![z]).unwrap();
        let input = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let mut p = Perturbations::new();
        p.insert(y, Tensor::from_vec(vec![0.5], &[1]).unwrap());
        let honest = execute(
            &g,
            std::slice::from_ref(&input),
            &KernelConfig::reference(),
            None,
        )
        .unwrap();
        let evil = execute(&g, &[input], &KernelConfig::reference(), Some(&p)).unwrap();
        assert_eq!(honest.outputs(&g)[0].data(), &[2.0]);
        assert_eq!(evil.outputs(&g)[0].data(), &[2.5]);
    }

    #[test]
    fn arity_violation_detected() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let bad = b.op("bad", OpKind::Add, &[x]);
        let g = b.finish(vec![bad]).unwrap();
        let r = execute(&g, &[Tensor::ones(&[1])], &KernelConfig::reference(), None);
        assert!(matches!(r, Err(GraphError::Arity { .. })));
    }

    #[test]
    fn embedding_rounds_ids() {
        let mut b = GraphBuilder::new(1);
        let table = b.parameter("table", Tensor::<f32>::arange(8).reshape(&[4, 2]).unwrap());
        let ids = b.input(0, "ids");
        let e = b.op("emb", OpKind::Embedding, &[table, ids]);
        let g = b.finish(vec![e]).unwrap();
        let ids_t = Tensor::from_vec(vec![2.0, 0.0], &[2]).unwrap();
        let exec = execute(&g, &[ids_t], &KernelConfig::reference(), None).unwrap();
        assert_eq!(exec.outputs(&g)[0].data(), &[4.0, 5.0, 0.0, 1.0]);
    }

    #[test]
    fn flatten_from_keeps_batch() {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let f = b.op("f", OpKind::FlattenFrom(1), &[x]);
        let g = b.finish(vec![f]).unwrap();
        let input = Tensor::<f32>::zeros(&[2, 3, 4]);
        let exec = execute(&g, &[input], &KernelConfig::reference(), None).unwrap();
        assert_eq!(exec.outputs(&g)[0].dims(), &[2, 12]);
    }
}
