//! Verifiable subgraph extraction: contiguous slices of the canonical
//! topological order with live-in/live-out frontiers (Eq. 13–14 of the
//! paper) and standalone re-execution.

use std::collections::HashMap;

use tao_tensor::{KernelConfig, Tensor};

use crate::error::GraphError;
use crate::exec::eval_node;
use crate::graph::{Graph, NodeId};
use crate::op::OpKind;
use crate::Result;

/// A contiguous slice `[start, end)` of a graph's canonical topological
/// order, with its dataflow frontiers.
///
/// `live_in` lists producer nodes *outside* the slice whose values nodes
/// inside consume (`In(S)` in the paper, excluding parameters, which are
/// covered by the weight commitment instead). `live_out` lists nodes inside
/// the slice consumed outside it or declared as graph outputs (`Out(S)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Subgraph {
    /// Inclusive start index in the canonical order.
    pub start: usize,
    /// Exclusive end index.
    pub end: usize,
    /// External producer nodes feeding the slice (sorted ascending).
    pub live_in: Vec<NodeId>,
    /// Parameter names referenced inside the slice (sorted).
    pub param_refs: Vec<String>,
    /// Slice nodes visible outside (sorted ascending).
    pub live_out: Vec<NodeId>,
}

impl Subgraph {
    /// Number of operators in the slice.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for an empty slice (never produced by [`extract`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when the slice is a single operator (dispute leaf).
    pub fn is_leaf(&self) -> bool {
        self.len() == 1
    }

    /// True if a node id falls inside the slice.
    pub fn contains(&self, id: NodeId) -> bool {
        (self.start..self.end).contains(&id.0)
    }
}

/// Computes the live-in/live-out frontiers of `[start, end)` by the linear
/// scan of §5.2.
///
/// # Errors
///
/// Returns [`GraphError::BadRange`] for an empty or out-of-bounds range.
pub fn extract(graph: &Graph, start: usize, end: usize) -> Result<Subgraph> {
    if start >= end || end > graph.len() {
        return Err(GraphError::BadRange {
            start,
            end,
            len: graph.len(),
        });
    }
    let mut live_in = Vec::new();
    let mut param_refs = Vec::new();
    for node in &graph.nodes()[start..end] {
        if let OpKind::Parameter(name) = &node.kind {
            param_refs.push(name.clone());
        }
        for &input in &node.inputs {
            if input.0 < start {
                // Parameters feeding the slice are covered by the weight
                // commitment, not by interface hashes.
                if let OpKind::Parameter(name) = &graph.node(input)?.kind {
                    param_refs.push(name.clone());
                } else if !live_in.contains(&input) {
                    live_in.push(input);
                }
            }
        }
    }
    let mut live_out = Vec::new();
    for node in &graph.nodes()[start..end] {
        let id = node.id;
        let used_outside = graph.nodes()[end..]
            .iter()
            .any(|later| later.inputs.contains(&id));
        if used_outside || graph.outputs().contains(&id) {
            live_out.push(id);
        }
    }
    live_in.sort();
    live_out.sort();
    param_refs.sort();
    param_refs.dedup();
    Ok(Subgraph {
        start,
        end,
        live_in,
        param_refs,
        live_out,
    })
}

/// Splits `[start, end)` into `n` contiguous, near-equal, non-empty slices
/// (fewer when the range is shorter than `n`). This is the canonical
/// partition policy both parties compute deterministically.
pub fn partition(start: usize, end: usize, n: usize) -> Vec<(usize, usize)> {
    let len = end.saturating_sub(start);
    if len == 0 || n == 0 {
        return Vec::new();
    }
    let pieces = n.min(len);
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut cursor = start;
    for i in 0..pieces {
        let size = base + usize::from(i < extra);
        out.push((cursor, cursor + size));
        cursor += size;
    }
    out
}

/// Re-executes a subgraph slice given boundary values.
///
/// `boundary` must provide the value of every `live_in` node; graph inputs
/// and parameters inside the slice are taken from `inputs` / the graph's
/// state dict. Returns the values of all nodes in the slice keyed by id.
///
/// # Errors
///
/// Returns an error when a boundary value is missing or a kernel fails.
pub fn execute_subgraph(
    graph: &Graph,
    sub: &Subgraph,
    boundary: &HashMap<NodeId, Tensor<f32>>,
    inputs: &[Tensor<f32>],
    cfg: &KernelConfig,
) -> Result<HashMap<NodeId, Tensor<f32>>> {
    // Sparse value store indexed by node id; pre-seed the boundary.
    let mut values: Vec<Option<Tensor<f32>>> = vec![None; graph.len()];
    for &id in &sub.live_in {
        let v = boundary
            .get(&id)
            .ok_or_else(|| GraphError::Malformed(format!("missing boundary value for {id}")))?;
        values[id.0] = Some(v.clone());
    }
    // Parameters outside the slice referenced by it.
    for node in &graph.nodes()[sub.start..sub.end] {
        for &input in &node.inputs {
            if input.0 < sub.start {
                if let OpKind::Parameter(name) = &graph.node(input)?.kind {
                    values[input.0] = Some(graph.param(name)?.clone());
                }
            }
        }
    }
    // Dense evaluation within the slice. `eval_node` reads predecessors
    // from a plain slice, so materialize a dense view lazily.
    let mut dense: Vec<Tensor<f32>> = vec![Tensor::zeros(&[0]); graph.len()];
    for (i, v) in values.iter().enumerate() {
        if let Some(t) = v {
            dense[i] = t.clone();
        }
    }
    let mut out = HashMap::new();
    for node in &graph.nodes()[sub.start..sub.end] {
        let v = eval_node(graph, node, &dense, inputs, cfg)?;
        dense[node.id.0] = v.clone();
        out.insert(node.id, v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::exec::execute;

    fn chain() -> Graph {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", Tensor::<f32>::eye(2));
        let m = b.op("m", OpKind::MatMul, &[x, w]);
        let r = b.op("r", OpKind::Relu, &[m]);
        let s = b.op("s", OpKind::MulScalar(2.0), &[r]);
        b.finish(vec![s]).unwrap()
    }

    #[test]
    fn frontiers_of_middle_slice() {
        let g = chain();
        // Slice containing only relu (index 3).
        let sub = extract(&g, 3, 4).unwrap();
        assert_eq!(sub.live_in, vec![NodeId(2)]);
        assert_eq!(sub.live_out, vec![NodeId(3)]);
        assert!(sub.param_refs.is_empty());
        assert!(sub.is_leaf());
    }

    #[test]
    fn param_edges_become_param_refs() {
        let g = chain();
        // Slice containing only matmul (index 2): inputs are x (live-in)
        // and w (parameter ref).
        let sub = extract(&g, 2, 3).unwrap();
        assert_eq!(sub.live_in, vec![NodeId(0)]);
        assert_eq!(sub.param_refs, vec!["w".to_string()]);
    }

    #[test]
    fn whole_graph_slice() {
        let g = chain();
        let sub = extract(&g, 0, g.len()).unwrap();
        assert!(sub.live_in.is_empty());
        assert_eq!(sub.live_out, vec![NodeId(4)]);
    }

    #[test]
    fn bad_ranges_rejected() {
        let g = chain();
        assert!(extract(&g, 2, 2).is_err());
        assert!(extract(&g, 0, 99).is_err());
        assert!(extract(&g, 4, 3).is_err());
    }

    #[test]
    fn partition_near_equal() {
        assert_eq!(partition(0, 10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(partition(5, 6, 4), vec![(5, 6)]);
        assert_eq!(partition(0, 4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(partition(3, 3, 2).is_empty());
        assert!(partition(0, 5, 0).is_empty());
    }

    #[test]
    fn partition_covers_range_exactly() {
        for len in 1..40 {
            for n in 1..10 {
                let parts = partition(7, 7 + len, n);
                assert_eq!(parts.first().unwrap().0, 7);
                assert_eq!(parts.last().unwrap().1, 7 + len);
                for w in parts.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                    assert!(w[0].1 > w[0].0);
                }
            }
        }
    }

    #[test]
    fn subgraph_reexecution_matches_full_trace() {
        let g = chain();
        let input = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2]).unwrap();
        let cfg = KernelConfig::reference();
        let full = execute(&g, std::slice::from_ref(&input), &cfg, None).unwrap();
        let sub = extract(&g, 2, 4).unwrap();
        let mut boundary = HashMap::new();
        for &id in &sub.live_in {
            boundary.insert(id, full.values[id.0].clone());
        }
        let got = execute_subgraph(&g, &sub, &boundary, &[input], &cfg).unwrap();
        for &id in &sub.live_out {
            assert_eq!(got[&id].data(), full.values[id.0].data());
        }
    }

    #[test]
    fn missing_boundary_value_errors() {
        let g = chain();
        let sub = extract(&g, 3, 4).unwrap();
        let r = execute_subgraph(
            &g,
            &sub,
            &HashMap::new(),
            &[Tensor::zeros(&[2, 2])],
            &KernelConfig::reference(),
        );
        assert!(r.is_err());
    }
}
