//! Reverse-mode automatic differentiation over executed graphs.
//!
//! The bound-aware attacks of §4.4 need `∇_{Δ_v} L` for perturbations
//! injected at arbitrary operator outputs. Because the loss gradient with
//! respect to a node's *output* is exactly the gradient with respect to a
//! perturbation added to it, one backward pass yields every `∇_{Δ_v}`
//! simultaneously.
//!
//! Gradients are computed in plain f32 under the reference kernel
//! configuration; attack optimization does not need bitwise-faithful
//! device rounding, only accurate descent directions.

use std::collections::HashMap;

use tao_tensor::{KernelConfig, MathElement, Shape, Tensor};

use crate::error::GraphError;
use crate::exec::Execution;
use crate::graph::{Graph, Node, NodeId};
use crate::op::OpKind;
use crate::Result;

/// Per-node gradients produced by [`backward`]; `None` where no gradient
/// reached the node (or none is defined, e.g. embedding indices).
pub type Gradients = Vec<Option<Tensor<f32>>>;

/// Runs reverse-mode differentiation.
///
/// `seed_grads` maps output (or interior) node ids to their upstream
/// gradient tensors — typically the single graph output with `dL/dy`.
///
/// # Errors
///
/// Returns an error when a seed shape mismatches its node output or a VJP
/// hits malformed state.
pub fn backward(
    graph: &Graph,
    exec: &Execution,
    inputs: &[Tensor<f32>],
    seed_grads: &HashMap<NodeId, Tensor<f32>>,
) -> Result<Gradients> {
    let cfg = KernelConfig::reference();
    let mut grads: Gradients = vec![None; graph.len()];
    for (&id, g) in seed_grads {
        let out = exec.value(id)?;
        if g.shape() != out.shape() {
            return Err(GraphError::Malformed(format!(
                "seed gradient for {id} has shape {:?}, node output is {:?}",
                g.dims(),
                out.dims()
            )));
        }
        accumulate(&mut grads, id, g.clone())?;
    }
    for node in graph.nodes().iter().rev() {
        let Some(gout) = grads[node.id.0].clone() else {
            continue;
        };
        let input_grads = vjp(graph, node, exec, inputs, &gout, &cfg)?;
        for (slot, grad) in node.inputs.iter().zip(input_grads) {
            if let Some(g) = grad {
                accumulate(&mut grads, *slot, g)?;
            }
        }
    }
    Ok(grads)
}

fn accumulate(grads: &mut Gradients, id: NodeId, g: Tensor<f32>) -> Result<()> {
    match &mut grads[id.0] {
        Some(existing) => {
            *existing = existing.add(&g)?;
        }
        slot @ None => *slot = Some(g),
    }
    Ok(())
}

/// Sums `grad` over broadcast dimensions so it matches `target` (the VJP of
/// implicit broadcasting).
fn unbroadcast(grad: &Tensor<f32>, target: &Shape, cfg: &KernelConfig) -> Result<Tensor<f32>> {
    if grad.shape() == target {
        return Ok(grad.clone());
    }
    let mut g = grad.clone();
    // Collapse leading extra axes.
    while g.rank() > target.rank() {
        g = g.sum_axis(0, cfg)?;
    }
    // Sum axes where the target extent is 1.
    for axis in 0..target.rank() {
        if target.dims()[axis] == 1 && g.dims()[axis] != 1 {
            let summed = g.sum_axis(axis, cfg)?;
            // Re-insert the singleton axis.
            let mut dims = summed.dims().to_vec();
            dims.insert(axis, 1);
            g = summed.reshape(&dims)?;
        }
    }
    Ok(g)
}

/// Per-operator vector-Jacobian product: gradient w.r.t. each input.
#[allow(clippy::too_many_lines)]
fn vjp(
    _graph: &Graph,
    node: &Node,
    exec: &Execution,
    inputs: &[Tensor<f32>],
    gout: &Tensor<f32>,
    cfg: &KernelConfig,
) -> Result<Vec<Option<Tensor<f32>>>> {
    let val = |id: NodeId| exec.value(id);
    let out = exec.value(node.id)?;
    let _ = inputs;
    let gs: Vec<Option<Tensor<f32>>> = match &node.kind {
        OpKind::Input(_) | OpKind::Parameter(_) => vec![],

        OpKind::Add => {
            let a = val(node.inputs[0])?;
            let b = val(node.inputs[1])?;
            vec![
                Some(unbroadcast(gout, a.shape(), cfg)?),
                Some(unbroadcast(gout, b.shape(), cfg)?),
            ]
        }
        OpKind::Sub => {
            let a = val(node.inputs[0])?;
            let b = val(node.inputs[1])?;
            vec![
                Some(unbroadcast(gout, a.shape(), cfg)?),
                Some(unbroadcast(&gout.neg(), b.shape(), cfg)?),
            ]
        }
        OpKind::Mul => {
            let a = val(node.inputs[0])?;
            let b = val(node.inputs[1])?;
            vec![
                Some(unbroadcast(&gout.mul(b)?, a.shape(), cfg)?),
                Some(unbroadcast(&gout.mul(a)?, b.shape(), cfg)?),
            ]
        }
        OpKind::Div => {
            let a = val(node.inputs[0])?;
            let b = val(node.inputs[1])?;
            let ga = gout.div(b)?;
            let gb = gout.mul(a)?.div(&b.mul(b)?)?.neg();
            vec![
                Some(unbroadcast(&ga, a.shape(), cfg)?),
                Some(unbroadcast(&gb, b.shape(), cfg)?),
            ]
        }
        OpKind::Pow => {
            let a = val(node.inputs[0])?;
            let b = val(node.inputs[1])?;
            // d(a^b)/da = b a^(b-1);  d(a^b)/db = a^b ln a.
            let ga = gout.mul(b)?.mul(&a.pow(&b.add_scalar(-1.0))?)?;
            let ln_a = a.map(|x| if x > 0.0 { x.ln() } else { 0.0 });
            let gb = gout.mul(out)?.mul(&ln_a)?;
            vec![
                Some(unbroadcast(&ga, a.shape(), cfg)?),
                Some(unbroadcast(&gb, b.shape(), cfg)?),
            ]
        }
        OpKind::Neg => vec![Some(gout.neg())],
        OpKind::AddScalar(_) => vec![Some(gout.clone())],
        OpKind::MulScalar(s) => vec![Some(gout.mul_scalar(*s as f32))],
        OpKind::PowScalar(p) => {
            let x = val(node.inputs[0])?;
            let p32 = *p as f32;
            let g = gout.mul(&x.pow_scalar(p32 - 1.0).mul_scalar(p32))?;
            vec![Some(g)]
        }
        OpKind::Sqrt => {
            // d√x = 1/(2√x) = 0.5 / out.
            let g = gout.mul(&out.map(|y| if y > 0.0 { 0.5 / y } else { 0.0 }))?;
            vec![Some(g)]
        }
        OpKind::Rsqrt => {
            // d x^-1/2 = -1/2 x^-3/2 = -out^3 / 2.
            let g = gout.mul(&out.map(|y| -0.5 * y * y * y))?;
            vec![Some(g)]
        }
        OpKind::Exp => vec![Some(gout.mul(out)?)],
        OpKind::Log => {
            let x = val(node.inputs[0])?;
            vec![Some(gout.div(x)?)]
        }
        OpKind::Sin => {
            let x = val(node.inputs[0])?;
            vec![Some(gout.mul(&x.cos())?)]
        }
        OpKind::Cos => {
            let x = val(node.inputs[0])?;
            vec![Some(gout.mul(&x.sin().neg())?)]
        }
        OpKind::Tanh => {
            // 1 - tanh^2.
            let g = gout.mul(&out.map(|t| 1.0 - t * t))?;
            vec![Some(g)]
        }
        OpKind::Relu => {
            let x = val(node.inputs[0])?;
            let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
            vec![Some(gout.mul(&mask)?)]
        }
        OpKind::Gelu => {
            let x = val(node.inputs[0])?;
            const C: f32 = 0.797_884_6;
            const K: f32 = 0.044_715;
            let d = x.map(|v| {
                let u = C * (v + K * v * v * v);
                let t = u.tanh_with(cfg.math);
                0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * C * (1.0 + 3.0 * K * v * v)
            });
            vec![Some(gout.mul(&d)?)]
        }
        OpKind::Silu => {
            let x = val(node.inputs[0])?;
            let d = x.map(|v| {
                let s = v.sigmoid_with(cfg.math);
                s * (1.0 + v * (1.0 - s))
            });
            vec![Some(gout.mul(&d)?)]
        }
        OpKind::Sigmoid => {
            let g = gout.mul(&out.map(|s| s * (1.0 - s)))?;
            vec![Some(g)]
        }
        OpKind::Softmax => {
            // g_i = y_i (gout_i - Σ_j gout_j y_j) per lane.
            let d = out.dims()[out.rank() - 1];
            let mut gx = Vec::with_capacity(out.len());
            for (ylane, glane) in out.data().chunks(d).zip(gout.data().chunks(d)) {
                let dot: f32 = ylane.iter().zip(glane).map(|(&y, &g)| y * g).sum();
                for (y, g) in ylane.iter().zip(glane) {
                    gx.push(y * (g - dot));
                }
            }
            vec![Some(Tensor::from_vec(gx, out.dims())?)]
        }
        OpKind::LayerNorm { eps } => {
            let x = val(node.inputs[0])?;
            let gamma = val(node.inputs[1])?;
            let d = x.dims()[x.rank() - 1];
            let nd = d as f32;
            let mut gx = Vec::with_capacity(x.len());
            let mut ggamma = vec![0.0f32; d];
            let mut gbeta = vec![0.0f32; d];
            for (lane, glane) in x.data().chunks(d).zip(gout.data().chunks(d)) {
                let mean: f32 = lane.iter().sum::<f32>() / nd;
                let var: f32 = lane.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / nd;
                let inv = 1.0 / (var + *eps as f32).sqrt();
                let xhat: Vec<f32> = lane.iter().map(|&v| (v - mean) * inv).collect();
                let gg: Vec<f32> = glane
                    .iter()
                    .zip(gamma.data())
                    .map(|(&g, &gm)| g * gm)
                    .collect();
                let mean_gg: f32 = gg.iter().sum::<f32>() / nd;
                let mean_gg_xhat: f32 =
                    gg.iter().zip(&xhat).map(|(&a, &b)| a * b).sum::<f32>() / nd;
                for i in 0..d {
                    gx.push(inv * (gg[i] - mean_gg - xhat[i] * mean_gg_xhat));
                    ggamma[i] += glane[i] * xhat[i];
                    gbeta[i] += glane[i];
                }
            }
            vec![
                Some(Tensor::from_vec(gx, x.dims())?),
                Some(Tensor::from_vec(ggamma, &[d])?),
                Some(Tensor::from_vec(gbeta, &[d])?),
            ]
        }
        OpKind::RmsNorm { eps } => {
            let x = val(node.inputs[0])?;
            let gamma = val(node.inputs[1])?;
            let d = x.dims()[x.rank() - 1];
            let nd = d as f32;
            let mut gx = Vec::with_capacity(x.len());
            let mut ggamma = vec![0.0f32; d];
            for (lane, glane) in x.data().chunks(d).zip(gout.data().chunks(d)) {
                let ms: f32 = lane.iter().map(|&v| v * v).sum::<f32>() / nd;
                let r = (ms + *eps as f32).sqrt();
                let dot: f32 = glane
                    .iter()
                    .zip(gamma.data())
                    .zip(lane)
                    .map(|((&g, &gm), &v)| g * gm * v)
                    .sum();
                for i in 0..d {
                    gx.push(gamma.data()[i] * glane[i] / r - lane[i] * dot / (nd * r * r * r));
                    ggamma[i] += glane[i] * lane[i] / r;
                }
            }
            vec![
                Some(Tensor::from_vec(gx, x.dims())?),
                Some(Tensor::from_vec(ggamma, &[d])?),
            ]
        }
        OpKind::BatchNorm2d { eps } => {
            let x = val(node.inputs[0])?;
            let gamma = val(node.inputs[1])?;
            let rvar = val(node.inputs[4])?;
            let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
            let hw = h * w;
            let mut gx = Vec::with_capacity(x.len());
            for ni in 0..n {
                for ci in 0..c {
                    let scale = gamma.data()[ci] / (rvar.data()[ci] + *eps as f32).sqrt();
                    let base = (ni * c + ci) * hw;
                    for &g in &gout.data()[base..base + hw] {
                        gx.push(g * scale);
                    }
                }
            }
            // Running stats are constants; gamma/beta grads omitted (eval
            // mode, adversary cannot touch parameters anyway).
            vec![
                Some(Tensor::from_vec(gx, x.dims())?),
                None,
                None,
                None,
                None,
            ]
        }
        OpKind::GroupNorm { groups, eps } => {
            let x = val(node.inputs[0])?;
            let gamma = val(node.inputs[1])?;
            let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
            let cg = c / groups;
            let glen = cg * h * w;
            let nd = glen as f32;
            let mut gx = vec![0.0f32; x.len()];
            for ni in 0..n {
                for gi in 0..*groups {
                    let base = (ni * c + gi * cg) * h * w;
                    let lane = &x.data()[base..base + glen];
                    let glane = &gout.data()[base..base + glen];
                    let mean: f32 = lane.iter().sum::<f32>() / nd;
                    let var: f32 = lane.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / nd;
                    let inv = 1.0 / (var + *eps as f32).sqrt();
                    let xhat: Vec<f32> = lane.iter().map(|&v| (v - mean) * inv).collect();
                    let gg: Vec<f32> = glane
                        .iter()
                        .enumerate()
                        .map(|(i, &g)| g * gamma.data()[gi * cg + i / (h * w)])
                        .collect();
                    let mean_gg: f32 = gg.iter().sum::<f32>() / nd;
                    let mean_gg_xhat: f32 =
                        gg.iter().zip(&xhat).map(|(&a, &b)| a * b).sum::<f32>() / nd;
                    for i in 0..glen {
                        gx[base + i] = inv * (gg[i] - mean_gg - xhat[i] * mean_gg_xhat);
                    }
                }
            }
            vec![Some(Tensor::from_vec(gx, x.dims())?), None, None]
        }
        OpKind::MatMul => {
            let a = val(node.inputs[0])?;
            let b = val(node.inputs[1])?;
            // gA = g @ B^T, gB = A^T @ g, reducing over any implicit batch.
            let bt = transpose_last2(b)?;
            let at = transpose_last2(a)?;
            let mut ga = gout.matmul(&bt, cfg)?;
            let mut gb = at.matmul(gout, cfg)?;
            if ga.rank() > a.rank() {
                ga = sum_leading(&ga, a.rank(), cfg)?;
            }
            if gb.rank() > b.rank() {
                gb = sum_leading(&gb, b.rank(), cfg)?;
            }
            // When one operand was unbatched but output batched, reduce.
            if a.rank() == gout.rank() && b.rank() == 2 && gout.rank() > 2 {
                gb = sum_leading(&gb, 2, cfg)?;
            }
            if b.rank() == gout.rank() && a.rank() == 2 && gout.rank() > 2 {
                ga = sum_leading(&ga, 2, cfg)?;
            }
            vec![Some(ga), Some(gb)]
        }
        // Quantized GEMMs under the straight-through estimator: rounding
        // to the int8 grid is piecewise-constant (gradient zero almost
        // everywhere), so attack-search gradients treat the grid as
        // transparent and differentiate the float-equivalent op.
        OpKind::QuantMatmul => {
            let a = val(node.inputs[0])?;
            let b = val(node.inputs[1])?;
            // Rank-2 only (enforced by the kernel), so no batch reduction.
            vec![
                Some(gout.matmul(&transpose_last2(b)?, cfg)?),
                Some(transpose_last2(a)?.matmul(gout, cfg)?),
            ]
        }
        // Straight-through slopes of the static-scale fake-quant pair:
        // quantize divides by the scale, dequantize multiplies it back.
        OpKind::Quantize { scale } => vec![Some(gout.mul_scalar((1.0 / *scale) as f32))],
        OpKind::Dequantize { scale } => vec![Some(gout.mul_scalar(*scale as f32))],
        OpKind::Linear | OpKind::QuantLinear => {
            let x = val(node.inputs[0])?;
            let wt = val(node.inputs[1])?;
            let in_f = x.dims()[x.rank() - 1];
            let out_f = wt.dims()[0];
            let rows = x.len() / in_f;
            // gx = g @ W; gW = g^T x (summed over rows); gb = sum g.
            let mut gx = vec![0.0f32; x.len()];
            let mut gw = vec![0.0f32; out_f * in_f];
            let mut gb = vec![0.0f32; out_f];
            for r in 0..rows {
                let g = &gout.data()[r * out_f..(r + 1) * out_f];
                let xr = &x.data()[r * in_f..(r + 1) * in_f];
                for o in 0..out_f {
                    let go = g[o];
                    gb[o] += go;
                    let wrow = &wt.data()[o * in_f..(o + 1) * in_f];
                    for i in 0..in_f {
                        gx[r * in_f + i] += go * wrow[i];
                        gw[o * in_f + i] += go * xr[i];
                    }
                }
            }
            let mut out_grads = vec![
                Some(Tensor::from_vec(gx, x.dims())?),
                Some(Tensor::from_vec(gw, wt.dims())?),
            ];
            if node.inputs.len() == 3 {
                out_grads.push(Some(Tensor::from_vec(gb, &[out_f])?));
            }
            out_grads
        }
        OpKind::Conv2d { stride, padding } => {
            let x = val(node.inputs[0])?;
            let wt = val(node.inputs[1])?;
            let (n, c_in, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
            let (c_out, _, kh, kw) = (wt.dims()[0], wt.dims()[1], wt.dims()[2], wt.dims()[3]);
            let (oh, ow) = (out.dims()[2], out.dims()[3]);
            let pad = *padding as isize;
            let mut gx = vec![0.0f32; x.len()];
            let mut gw = vec![0.0f32; wt.len()];
            let mut gb = vec![0.0f32; c_out];
            for ni in 0..n {
                #[allow(clippy::needless_range_loop)] // oc also builds flat offsets
                for oc in 0..c_out {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let go = gout.data()[((ni * c_out + oc) * oh + oy) * ow + ox];
                            gb[oc] += go;
                            for ic in 0..c_in {
                                for ky in 0..kh {
                                    let iy = (oy * stride + ky) as isize - pad;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..kw {
                                        let ix = (ox * stride + kx) as isize - pad;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        let xi =
                                            ((ni * c_in + ic) * h + iy as usize) * w + ix as usize;
                                        let wi = ((oc * c_in + ic) * kh + ky) * kw + kx;
                                        gx[xi] += go * wt.data()[wi];
                                        gw[wi] += go * x.data()[xi];
                                    }
                                }
                            }
                        }
                    }
                }
            }
            let mut out_grads = vec![
                Some(Tensor::from_vec(gx, x.dims())?),
                Some(Tensor::from_vec(gw, wt.dims())?),
            ];
            if node.inputs.len() == 3 {
                out_grads.push(Some(Tensor::from_vec(gb, &[c_out])?));
            }
            out_grads
        }
        OpKind::SumAll => {
            let x = val(node.inputs[0])?;
            let g = gout.data()[0];
            vec![Some(Tensor::full(x.dims(), g))]
        }
        OpKind::MeanAll => {
            let x = val(node.inputs[0])?;
            let g = gout.data()[0] / x.len() as f32;
            vec![Some(Tensor::full(x.dims(), g))]
        }
        OpKind::SumAxis(axis) | OpKind::MeanAxis(axis) => {
            let x = val(node.inputs[0])?;
            let extent = x.dims()[*axis];
            let scale = if matches!(node.kind, OpKind::MeanAxis(_)) {
                1.0 / extent as f32
            } else {
                1.0
            };
            let outer: usize = x.dims()[..*axis].iter().product();
            let inner: usize = x.dims()[*axis + 1..].iter().product();
            let mut gx = vec![0.0f32; x.len()];
            for o in 0..outer {
                for k in 0..extent {
                    for i in 0..inner {
                        gx[o * extent * inner + k * inner + i] = gout.data()[o * inner + i] * scale;
                    }
                }
            }
            vec![Some(Tensor::from_vec(gx, x.dims())?)]
        }
        OpKind::MaxAxis(axis) => {
            let x = val(node.inputs[0])?;
            let extent = x.dims()[*axis];
            let outer: usize = x.dims()[..*axis].iter().product();
            let inner: usize = x.dims()[*axis + 1..].iter().product();
            let mut gx = vec![0.0f32; x.len()];
            for o in 0..outer {
                for i in 0..inner {
                    let mut best = 0;
                    for k in 1..extent {
                        if x.data()[o * extent * inner + k * inner + i]
                            > x.data()[o * extent * inner + best * inner + i]
                        {
                            best = k;
                        }
                    }
                    gx[o * extent * inner + best * inner + i] = gout.data()[o * inner + i];
                }
            }
            vec![Some(Tensor::from_vec(gx, x.dims())?)]
        }
        OpKind::MaxPool2d { kernel, stride } => {
            let x = val(node.inputs[0])?;
            let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
            let (oh, ow) = (out.dims()[2], out.dims()[3]);
            let mut gx = vec![0.0f32; x.len()];
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * h * w;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best = base + oy * stride * w + ox * stride;
                            for ky in 0..*kernel {
                                for kx in 0..*kernel {
                                    let idx = base + (oy * stride + ky) * w + ox * stride + kx;
                                    if x.data()[idx] > x.data()[best] {
                                        best = idx;
                                    }
                                }
                            }
                            gx[best] += gout.data()[((ni * c + ci) * oh + oy) * ow + ox];
                        }
                    }
                }
            }
            vec![Some(Tensor::from_vec(gx, x.dims())?)]
        }
        OpKind::AvgPool2d { kernel, stride } => {
            let x = val(node.inputs[0])?;
            let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
            let (oh, ow) = (out.dims()[2], out.dims()[3]);
            let norm = 1.0 / (*kernel * *kernel) as f32;
            let mut gx = vec![0.0f32; x.len()];
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * h * w;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = gout.data()[((ni * c + ci) * oh + oy) * ow + ox] * norm;
                            for ky in 0..*kernel {
                                for kx in 0..*kernel {
                                    gx[base + (oy * stride + ky) * w + ox * stride + kx] += g;
                                }
                            }
                        }
                    }
                }
            }
            vec![Some(Tensor::from_vec(gx, x.dims())?)]
        }
        OpKind::AdaptiveAvgPool1x1 => {
            let x = val(node.inputs[0])?;
            let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
            let hw = (h * w) as f32;
            let mut gx = Vec::with_capacity(x.len());
            for ni in 0..n {
                for ci in 0..c {
                    let g = gout.data()[ni * c + ci] / hw;
                    gx.extend(std::iter::repeat_n(g, h * w));
                }
            }
            vec![Some(Tensor::from_vec(gx, x.dims())?)]
        }
        OpKind::UpsampleNearest(factor) => {
            let x = val(node.inputs[0])?;
            let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
            let (oh, ow) = (h * factor, w * factor);
            let mut gx = vec![0.0f32; x.len()];
            for ni in 0..n {
                for ci in 0..c {
                    let obase = (ni * c + ci) * oh * ow;
                    let ibase = (ni * c + ci) * h * w;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            gx[ibase + (oy / factor) * w + ox / factor] +=
                                gout.data()[obase + oy * ow + ox];
                        }
                    }
                }
            }
            vec![Some(Tensor::from_vec(gx, x.dims())?)]
        }
        OpKind::Reshape(_) | OpKind::Flatten | OpKind::FlattenFrom(_) => {
            let x = val(node.inputs[0])?;
            vec![Some(gout.reshape(x.dims())?)]
        }
        OpKind::Transpose(a, b) => vec![Some(gout.transpose(*a, *b)?)],
        OpKind::Permute(perm) => {
            // Gradient flows through the inverse permutation.
            let mut inv = vec![0usize; perm.len()];
            for (i, &p) in perm.iter().enumerate() {
                inv[p] = i;
            }
            vec![Some(gout.permute(&inv)?)]
        }
        OpKind::Slice { axis, start, end } => {
            let x = val(node.inputs[0])?;
            let mut gx = Tensor::zeros(x.dims());
            let outer: usize = x.dims()[..*axis].iter().product();
            let inner: usize = x.dims()[*axis + 1..].iter().product();
            let extent = x.dims()[*axis];
            let sliced = end - start;
            for o in 0..outer {
                for k in 0..sliced {
                    for i in 0..inner {
                        gx.data_mut()[o * extent * inner + (start + k) * inner + i] =
                            gout.data()[o * sliced * inner + k * inner + i];
                    }
                }
            }
            vec![Some(gx)]
        }
        OpKind::Concat(axis) => {
            let mut grads = Vec::with_capacity(node.inputs.len());
            let mut cursor = 0;
            for &inp in &node.inputs {
                let extent = val(inp)?.dims()[*axis];
                grads.push(Some(gout.slice(*axis, cursor, cursor + extent)?));
                cursor += extent;
            }
            grads
        }
        OpKind::Embedding => {
            // Indices get no gradient; the table is a parameter the
            // adversary cannot perturb, so its gradient is unneeded.
            vec![None, None]
        }
        OpKind::MaskedFill(_) => {
            let x = val(node.inputs[0])?;
            let mask = val(node.inputs[1])?;
            let m = mask.broadcast_to(x.shape())?;
            let g = gout
                .data()
                .iter()
                .zip(m.data())
                .map(|(&g, &b)| if b != 0.0 { 0.0 } else { g })
                .collect();
            vec![Some(Tensor::from_vec(g, x.dims())?), None]
        }
        OpKind::Identity => vec![Some(gout.clone())],
    };
    Ok(gs)
}

fn transpose_last2(t: &Tensor<f32>) -> Result<Tensor<f32>> {
    let r = t.rank();
    Ok(t.transpose(r - 2, r - 1)?)
}

fn sum_leading(t: &Tensor<f32>, target_rank: usize, cfg: &KernelConfig) -> Result<Tensor<f32>> {
    let mut out = t.clone();
    while out.rank() > target_rank {
        out = out.sum_axis(0, cfg)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::exec::execute;

    /// Finite-difference check of `d out_sum / d input` against autodiff.
    fn check_grad(build: impl Fn(&mut GraphBuilder, NodeId) -> NodeId, input: Tensor<f32>) {
        let cfg = KernelConfig::reference();
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let y = build(&mut b, x);
        let s = b.op("loss", OpKind::SumAll, &[y]);
        let g = b.finish(vec![s]).unwrap();

        let exec = execute(&g, std::slice::from_ref(&input), &cfg, None).unwrap();
        let mut seeds = HashMap::new();
        seeds.insert(s, Tensor::scalar(1.0f32));
        let grads = backward(&g, &exec, std::slice::from_ref(&input), &seeds).unwrap();
        let gx = grads[x.0].as_ref().expect("input grad");

        let f = |inp: &Tensor<f32>| -> f64 {
            let e = execute(&g, std::slice::from_ref(inp), &cfg, None).unwrap();
            e.outputs(&g)[0].data()[0] as f64
        };
        let h = 1e-3f32;
        for i in 0..input.len().min(8) {
            let mut plus = input.clone();
            plus.data_mut()[i] += h;
            let mut minus = input.clone();
            minus.data_mut()[i] -= h;
            let fd = (f(&plus) - f(&minus)) / (2.0 * h as f64);
            let ad = gx.data()[i] as f64;
            assert!(
                (fd - ad).abs() < 2e-2 * (1.0 + fd.abs()),
                "element {i}: fd {fd} vs ad {ad}"
            );
        }
    }

    #[test]
    fn relu_grad() {
        check_grad(
            |b, x| b.op("r", OpKind::Relu, &[x]),
            Tensor::from_vec(vec![1.0, -2.0, 0.5, -0.1], &[4]).unwrap(),
        );
    }

    #[test]
    fn gelu_silu_sigmoid_tanh_grads() {
        let input = Tensor::<f32>::rand_uniform(&[6], -2.0, 2.0, 3);
        check_grad(|b, x| b.op("g", OpKind::Gelu, &[x]), input.clone());
        check_grad(|b, x| b.op("s", OpKind::Silu, &[x]), input.clone());
        check_grad(|b, x| b.op("sg", OpKind::Sigmoid, &[x]), input.clone());
        check_grad(|b, x| b.op("t", OpKind::Tanh, &[x]), input);
    }

    #[test]
    fn exp_log_sqrt_grads() {
        let input = Tensor::<f32>::rand_uniform(&[5], 0.5, 2.0, 4);
        check_grad(|b, x| b.op("e", OpKind::Exp, &[x]), input.clone());
        check_grad(|b, x| b.op("l", OpKind::Log, &[x]), input.clone());
        check_grad(|b, x| b.op("q", OpKind::Sqrt, &[x]), input.clone());
        check_grad(|b, x| b.op("rq", OpKind::Rsqrt, &[x]), input);
    }

    #[test]
    fn softmax_grad() {
        check_grad(
            |b, x| {
                let s = b.op("sm", OpKind::Softmax, &[x]);
                // Weighted so the gradient is nonzero (plain sum of a
                // softmax is constant 1).
                let w = b.parameter(
                    "w",
                    Tensor::from_vec(vec![1.0, -1.0, 2.0, 0.5], &[4]).unwrap(),
                );
                b.op("wm", OpKind::Mul, &[s, w])
            },
            Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1], &[1, 4]).unwrap(),
        );
    }

    #[test]
    fn matmul_grad() {
        check_grad(
            |b, x| {
                let w = b.parameter("w", Tensor::<f32>::rand_uniform(&[3, 2], -1.0, 1.0, 5));
                b.op("m", OpKind::MatMul, &[x, w])
            },
            Tensor::<f32>::rand_uniform(&[2, 3], -1.0, 1.0, 6),
        );
    }

    #[test]
    fn linear_grad() {
        check_grad(
            |b, x| {
                let w = b.parameter("w", Tensor::<f32>::rand_uniform(&[4, 3], -1.0, 1.0, 7));
                let bias = b.parameter("b", Tensor::<f32>::rand_uniform(&[4], -1.0, 1.0, 8));
                b.op("lin", OpKind::Linear, &[x, w, bias])
            },
            Tensor::<f32>::rand_uniform(&[2, 3], -1.0, 1.0, 9),
        );
    }

    #[test]
    fn conv_grad() {
        check_grad(
            |b, x| {
                let w = b.parameter(
                    "w",
                    Tensor::<f32>::rand_uniform(&[2, 1, 2, 2], -1.0, 1.0, 10),
                );
                b.op(
                    "c",
                    OpKind::Conv2d {
                        stride: 1,
                        padding: 1,
                    },
                    &[x, w],
                )
            },
            Tensor::<f32>::rand_uniform(&[1, 1, 3, 3], -1.0, 1.0, 11),
        );
    }

    #[test]
    fn layer_norm_grad() {
        check_grad(
            |b, x| {
                let gamma = b.parameter("g", Tensor::<f32>::rand_uniform(&[4], 0.5, 1.5, 12));
                let beta = b.parameter("be", Tensor::<f32>::zeros(&[4]));
                let ln = b.op("ln", OpKind::LayerNorm { eps: 1e-5 }, &[x, gamma, beta]);
                let w = b.parameter(
                    "w",
                    Tensor::from_vec(vec![1.0, -2.0, 0.5, 1.5], &[4]).unwrap(),
                );
                b.op("wm", OpKind::Mul, &[ln, w])
            },
            Tensor::<f32>::rand_uniform(&[2, 4], -1.0, 1.0, 13),
        );
    }

    #[test]
    fn rms_norm_grad() {
        check_grad(
            |b, x| {
                let gamma = b.parameter("g", Tensor::<f32>::rand_uniform(&[4], 0.5, 1.5, 14));
                let rn = b.op("rn", OpKind::RmsNorm { eps: 1e-6 }, &[x, gamma]);
                let w = b.parameter(
                    "w",
                    Tensor::from_vec(vec![1.0, -1.0, 2.0, -0.5], &[4]).unwrap(),
                );
                b.op("wm", OpKind::Mul, &[rn, w])
            },
            Tensor::<f32>::rand_uniform(&[2, 4], -1.0, 1.0, 15),
        );
    }

    #[test]
    fn pooling_grads() {
        let img = Tensor::<f32>::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, 16);
        check_grad(
            |b, x| {
                b.op(
                    "mp",
                    OpKind::MaxPool2d {
                        kernel: 2,
                        stride: 2,
                    },
                    &[x],
                )
            },
            img.clone(),
        );
        check_grad(
            |b, x| {
                b.op(
                    "ap",
                    OpKind::AvgPool2d {
                        kernel: 2,
                        stride: 2,
                    },
                    &[x],
                )
            },
            img.clone(),
        );
        check_grad(
            |b, x| b.op("gp", OpKind::AdaptiveAvgPool1x1, &[x]),
            img.clone(),
        );
        check_grad(|b, x| b.op("up", OpKind::UpsampleNearest(2), &[x]), img);
    }

    #[test]
    fn structural_grads() {
        let t = Tensor::<f32>::rand_uniform(&[2, 3], -1.0, 1.0, 17);
        check_grad(
            |b, x| b.op("rs", OpKind::Reshape(vec![3, 2]), &[x]),
            t.clone(),
        );
        check_grad(|b, x| b.op("tp", OpKind::Transpose(0, 1), &[x]), t.clone());
        check_grad(
            |b, x| {
                b.op(
                    "sl",
                    OpKind::Slice {
                        axis: 1,
                        start: 1,
                        end: 3,
                    },
                    &[x],
                )
            },
            t.clone(),
        );
        check_grad(|b, x| b.op("id", OpKind::Identity, &[x]), t);
    }

    #[test]
    fn elementwise_binary_grads_with_broadcast() {
        check_grad(
            |b, x| {
                let c = b.parameter("c", Tensor::from_vec(vec![2.0, -3.0, 0.5], &[3]).unwrap());
                let m = b.op("m", OpKind::Mul, &[x, c]);
                let d = b.op("d", OpKind::Div, &[m, c]);
                b.op("a", OpKind::Add, &[d, c])
            },
            Tensor::<f32>::rand_uniform(&[2, 3], 0.5, 1.5, 18),
        );
    }

    #[test]
    fn reductions_grads() {
        let t = Tensor::<f32>::rand_uniform(&[2, 3], -1.0, 1.0, 19);
        check_grad(|b, x| b.op("sa", OpKind::SumAxis(1), &[x]), t.clone());
        check_grad(|b, x| b.op("ma", OpKind::MeanAxis(0), &[x]), t.clone());
        check_grad(|b, x| b.op("mx", OpKind::MaxAxis(1), &[x]), t.clone());
        check_grad(|b, x| b.op("mn", OpKind::MeanAll, &[x]), t);
    }

    #[test]
    fn grad_reaches_interior_nodes() {
        // The attack needs gradients at *every* compute node, not just the
        // input; verify interior node gradients exist.
        let cfg = KernelConfig::reference();
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let e = b.op("e", OpKind::Exp, &[x]);
        let r = b.op("r", OpKind::Relu, &[e]);
        let s = b.op("s", OpKind::SumAll, &[r]);
        let g = b.finish(vec![s]).unwrap();
        let input = Tensor::<f32>::rand_uniform(&[4], -1.0, 1.0, 20);
        let exec = execute(&g, std::slice::from_ref(&input), &cfg, None).unwrap();
        let mut seeds = HashMap::new();
        seeds.insert(s, Tensor::scalar(1.0f32));
        let grads = backward(&g, &exec, &[input], &seeds).unwrap();
        assert!(grads[e.0].is_some());
        assert!(grads[r.0].is_some());
        assert!(grads[x.0].is_some());
    }

    #[test]
    fn seed_shape_mismatch_rejected() {
        let cfg = KernelConfig::reference();
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let g = b.finish(vec![x]).unwrap();
        let input = Tensor::<f32>::zeros(&[3]);
        let exec = execute(&g, std::slice::from_ref(&input), &cfg, None).unwrap();
        let mut seeds = HashMap::new();
        seeds.insert(x, Tensor::<f32>::zeros(&[2]));
        assert!(backward(&g, &exec, &[input], &seeds).is_err());
    }
}
