//! The operator-level dataflow graph.

use std::collections::BTreeMap;

use tao_tensor::Tensor;

use crate::error::GraphError;
use crate::op::OpKind;
use crate::Result;

/// Identifier of a node in its graph's canonical topological order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// One operator node: kind plus data-dependency edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Position in the canonical topological order.
    pub id: NodeId,
    /// Human-readable name (`"layer0.attn.matmul"`).
    pub name: String,
    /// Operator kind with attributes.
    pub kind: OpKind,
    /// Producer nodes, in argument order.
    pub inputs: Vec<NodeId>,
}

/// An acyclic dataflow graph `G = (V, E)` in canonical topological order,
/// together with its parameter state dict.
///
/// Nodes are stored in execution order; every edge points backwards
/// (`input.0 < id.0`), which the constructor validates. The canonical order
/// is what the dispute game's partition policy and the calibration's
/// "normalized node position" refer to.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    nodes: Vec<Node>,
    params: BTreeMap<String, Tensor<f32>>,
    num_inputs: usize,
    outputs: Vec<NodeId>,
}

impl Graph {
    /// Assembles and validates a graph.
    ///
    /// # Errors
    ///
    /// Returns an error when ids are not dense `0..n`, an edge points
    /// forward (cycle), a referenced parameter is missing from the state
    /// dict, or an output id is out of range.
    pub fn new(
        nodes: Vec<Node>,
        params: BTreeMap<String, Tensor<f32>>,
        num_inputs: usize,
        outputs: Vec<NodeId>,
    ) -> Result<Self> {
        for (i, node) in nodes.iter().enumerate() {
            if node.id.0 != i {
                return Err(GraphError::Malformed(format!(
                    "node {} stored at position {i}",
                    node.id
                )));
            }
            for &input in &node.inputs {
                if input.0 >= i {
                    return Err(GraphError::Malformed(format!(
                        "edge {input} -> {} violates topological order",
                        node.id
                    )));
                }
            }
            if let OpKind::Parameter(name) = &node.kind {
                if !params.contains_key(name) {
                    return Err(GraphError::MissingParameter(name.clone()));
                }
            }
            if let OpKind::Input(idx) = node.kind {
                if idx >= num_inputs {
                    return Err(GraphError::Malformed(format!(
                        "input placeholder {idx} but graph declares {num_inputs} inputs"
                    )));
                }
            }
        }
        for &out in &outputs {
            if out.0 >= nodes.len() {
                return Err(GraphError::Malformed(format!("output {out} out of range")));
            }
        }
        if outputs.is_empty() {
            return Err(GraphError::Malformed("graph has no outputs".into()));
        }
        Ok(Graph {
            nodes,
            params,
            num_inputs,
            outputs,
        })
    }

    /// Nodes in canonical topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node count `|V|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A node by id.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range id.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.0).ok_or(GraphError::UnknownNode(id))
    }

    /// The parameter state dict (sorted by name).
    pub fn params(&self) -> &BTreeMap<String, Tensor<f32>> {
        &self.params
    }

    /// A parameter tensor by name.
    ///
    /// # Errors
    ///
    /// Returns an error when the name is absent.
    pub fn param(&self, name: &str) -> Result<&Tensor<f32>> {
        self.params
            .get(name)
            .ok_or_else(|| GraphError::MissingParameter(name.into()))
    }

    /// Number of graph inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Output node ids.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Ids of all non-structural ("compute") nodes, in canonical order.
    ///
    /// These are the operators with intrinsic rounding error — the attack
    /// surface and the interesting rows of the calibration profiles.
    pub fn compute_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| !n.kind.is_structural())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all traced operators (everything except inputs and
    /// parameters), in canonical order.
    ///
    /// Calibration and the dispute game's selection rule range over these:
    /// structural operators contribute no *fresh* rounding error, but their
    /// outputs inherit upstream cross-device drift, so they still need
    /// calibrated thresholds for threshold-guided selection.
    pub fn traced_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| !matches!(n.kind, OpKind::Input(_) | OpKind::Parameter(_)))
            .map(|n| n.id)
            .collect()
    }

    /// Consumers of each node (inverse edges).
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for node in &self.nodes {
            for &input in &node.inputs {
                out[input.0].push(node.id);
            }
        }
        out
    }

    /// Total parameter element count.
    pub fn param_count(&self) -> usize {
        self.params.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        let nodes = vec![
            Node {
                id: NodeId(0),
                name: "x".into(),
                kind: OpKind::Input(0),
                inputs: vec![],
            },
            Node {
                id: NodeId(1),
                name: "w".into(),
                kind: OpKind::Parameter("w".into()),
                inputs: vec![],
            },
            Node {
                id: NodeId(2),
                name: "y".into(),
                kind: OpKind::MatMul,
                inputs: vec![NodeId(0), NodeId(1)],
            },
        ];
        let mut params = BTreeMap::new();
        params.insert("w".to_string(), Tensor::<f32>::eye(2));
        Graph::new(nodes, params, 1, vec![NodeId(2)]).unwrap()
    }

    #[test]
    fn valid_graph_builds() {
        let g = tiny();
        assert_eq!(g.len(), 3);
        assert_eq!(g.outputs(), &[NodeId(2)]);
        assert_eq!(g.param_count(), 4);
        assert_eq!(g.compute_nodes(), vec![NodeId(2)]);
    }

    #[test]
    fn rejects_forward_edges() {
        let nodes = vec![
            Node {
                id: NodeId(0),
                name: "a".into(),
                kind: OpKind::Identity,
                inputs: vec![NodeId(1)],
            },
            Node {
                id: NodeId(1),
                name: "x".into(),
                kind: OpKind::Input(0),
                inputs: vec![],
            },
        ];
        assert!(Graph::new(nodes, BTreeMap::new(), 1, vec![NodeId(1)]).is_err());
    }

    #[test]
    fn rejects_missing_parameter() {
        let nodes = vec![Node {
            id: NodeId(0),
            name: "w".into(),
            kind: OpKind::Parameter("absent".into()),
            inputs: vec![],
        }];
        assert!(Graph::new(nodes, BTreeMap::new(), 0, vec![NodeId(0)]).is_err());
    }

    #[test]
    fn rejects_bad_ids_and_outputs() {
        let nodes = vec![Node {
            id: NodeId(5),
            name: "x".into(),
            kind: OpKind::Input(0),
            inputs: vec![],
        }];
        assert!(Graph::new(nodes, BTreeMap::new(), 1, vec![NodeId(0)]).is_err());
        let ok = vec![Node {
            id: NodeId(0),
            name: "x".into(),
            kind: OpKind::Input(0),
            inputs: vec![],
        }];
        assert!(Graph::new(ok.clone(), BTreeMap::new(), 1, vec![NodeId(9)]).is_err());
        assert!(Graph::new(ok, BTreeMap::new(), 1, vec![]).is_err());
    }

    #[test]
    fn rejects_out_of_range_input_placeholder() {
        let nodes = vec![Node {
            id: NodeId(0),
            name: "x".into(),
            kind: OpKind::Input(3),
            inputs: vec![],
        }];
        assert!(Graph::new(nodes, BTreeMap::new(), 1, vec![NodeId(0)]).is_err());
    }

    #[test]
    fn consumers_inverse_edges() {
        let g = tiny();
        let cons = g.consumers();
        assert_eq!(cons[0], vec![NodeId(2)]);
        assert_eq!(cons[1], vec![NodeId(2)]);
        assert!(cons[2].is_empty());
    }
}
