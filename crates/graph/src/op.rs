//! Operator kinds: the tensor-level primitives a traced model consists of.
//!
//! The list mirrors Appendix A.3 of the paper (the PyTorch operations for
//! which theoretical error bounds are implemented): basic arithmetic and
//! elementwise functions, activations, normalization and softmax, linear
//! algebra and convolution, reductions/pooling/upsampling, and structural
//! (non-arithmetic) data movement.

use tao_tensor::Shape;

/// A primitive tensor operator (one node of the dataflow graph).
///
/// Attributes that affect semantics (stride, eps, axes…) are part of the
/// kind, so the operator *signature* used in Merkle commitments covers
/// them: changing an attribute changes the graph root.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Graph input placeholder (position in the input list).
    Input(usize),
    /// Named model parameter (weight tensor looked up in the state dict).
    Parameter(String),

    // Basic arithmetic (binary, broadcasting).
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise multiplication.
    Mul,
    /// Elementwise division.
    Div,
    /// Elementwise power with a broadcast exponent operand.
    Pow,

    // Unary elementwise.
    /// Negation.
    Neg,
    /// Adds a compile-time scalar.
    AddScalar(f64),
    /// Multiplies by a compile-time scalar.
    MulScalar(f64),
    /// Raises to a compile-time scalar power.
    PowScalar(f64),
    /// Square root.
    Sqrt,
    /// Reciprocal square root.
    Rsqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Hyperbolic tangent.
    Tanh,

    // Activations.
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Sigmoid linear unit (swish).
    Silu,
    /// Logistic sigmoid.
    Sigmoid,

    // Normalization and softmax.
    /// Softmax along the last axis.
    Softmax,
    /// Layer normalization over the last axis; inputs `(x, gamma, beta)`.
    LayerNorm {
        /// Variance stabilizer.
        eps: f64,
    },
    /// RMS normalization over the last axis; inputs `(x, gamma)`.
    RmsNorm {
        /// Mean-square stabilizer.
        eps: f64,
    },
    /// Inference batch norm over NCHW; inputs `(x, gamma, beta, mean, var)`.
    BatchNorm2d {
        /// Variance stabilizer.
        eps: f64,
    },
    /// Group normalization over NCHW; inputs `(x, gamma, beta)`.
    GroupNorm {
        /// Number of channel groups.
        groups: usize,
        /// Variance stabilizer.
        eps: f64,
    },

    // Linear algebra and convolution.
    /// Matrix or batched-matrix product.
    MatMul,
    /// Affine layer `x @ w^T (+ b)`; inputs `(x, w)` or `(x, w, b)`.
    Linear,
    /// 2-D convolution; inputs `(x, w)` or `(x, w, b)`.
    Conv2d {
        /// Spatial stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },

    // Int8-quantized kernel family. The quantization policy (symmetric
    // scales, round-ties-away, clamp to ±127, widening wrapping-i32
    // accumulation) is exact integer arithmetic, so these operators are
    // cross-device bit-exact at every `KernelConfig` — their calibration
    // envelopes are all-zero and any deviation is an unbounded offense.
    /// Int8-quantized rank-2 matrix product with per-tensor symmetric
    /// scales derived from both operands.
    QuantMatmul,
    /// Int8-quantized affine layer with a per-tensor activation scale and
    /// per-output-channel weight scales; inputs `(x, w)` or `(x, w, b)`.
    QuantLinear,
    /// Fake-quantize to the symmetric int8 grid with a static committed
    /// scale (the scale is part of the operator signature).
    Quantize {
        /// Static quantization step; must be finite and positive.
        scale: f64,
    },
    /// Multiply quantized-grid integers back by a static committed scale.
    Dequantize {
        /// Static quantization step; must be finite and positive.
        scale: f64,
    },

    // Reductions / pooling / resampling.
    /// Mean over all elements (rank-0 output).
    MeanAll,
    /// Sum over all elements (rank-0 output).
    SumAll,
    /// Sum along one axis (axis removed).
    SumAxis(usize),
    /// Mean along one axis (axis removed).
    MeanAxis(usize),
    /// Maximum along one axis (axis removed).
    MaxAxis(usize),
    /// Square max pooling over NCHW.
    MaxPool2d {
        /// Window extent.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Square average pooling over NCHW.
    AvgPool2d {
        /// Window extent.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pool to `1x1` (adaptive avg pool).
    AdaptiveAvgPool1x1,
    /// Nearest-neighbour upsampling by an integer factor.
    UpsampleNearest(usize),

    // Structural / non-arithmetic.
    /// Reshape to a fixed shape.
    Reshape(Vec<usize>),
    /// Flatten to 1-D.
    Flatten,
    /// Flatten all but the leading (batch) axis.
    FlattenFrom(usize),
    /// Swap two axes.
    Transpose(usize, usize),
    /// Permute axes.
    Permute(Vec<usize>),
    /// Slice `[start, end)` along an axis.
    Slice {
        /// Sliced axis.
        axis: usize,
        /// Inclusive start.
        start: usize,
        /// Exclusive end.
        end: usize,
    },
    /// Concatenate all inputs along an axis.
    Concat(usize),
    /// Embedding lookup; inputs `(table, ids)` where `ids` holds
    /// integer-valued floats.
    Embedding,
    /// Replace elements where `mask != 0` with a constant; inputs
    /// `(x, mask)`.
    MaskedFill(f64),
    /// Identity (also eval-mode dropout).
    Identity,
}

impl OpKind {
    /// Short stable mnemonic used in signatures, thresholds, and reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Input(_) => "input",
            OpKind::Parameter(_) => "parameter",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Pow => "pow",
            OpKind::Neg => "neg",
            OpKind::AddScalar(_) => "add_scalar",
            OpKind::MulScalar(_) => "mul_scalar",
            OpKind::PowScalar(_) => "pow_scalar",
            OpKind::Sqrt => "sqrt",
            OpKind::Rsqrt => "rsqrt",
            OpKind::Exp => "exp",
            OpKind::Log => "log",
            OpKind::Sin => "sin",
            OpKind::Cos => "cos",
            OpKind::Tanh => "tanh",
            OpKind::Relu => "relu",
            OpKind::Gelu => "gelu",
            OpKind::Silu => "silu",
            OpKind::Sigmoid => "sigmoid",
            OpKind::Softmax => "softmax",
            OpKind::LayerNorm { .. } => "layer_norm",
            OpKind::RmsNorm { .. } => "rms_norm",
            OpKind::BatchNorm2d { .. } => "batch_norm2d",
            OpKind::GroupNorm { .. } => "group_norm",
            OpKind::MatMul => "matmul",
            OpKind::Linear => "linear",
            OpKind::Conv2d { .. } => "conv2d",
            OpKind::QuantMatmul => "quant_matmul",
            OpKind::QuantLinear => "quant_linear",
            OpKind::Quantize { .. } => "quantize",
            OpKind::Dequantize { .. } => "dequantize",
            OpKind::MeanAll => "mean",
            OpKind::SumAll => "sum",
            OpKind::SumAxis(_) => "sum_axis",
            OpKind::MeanAxis(_) => "mean_axis",
            OpKind::MaxAxis(_) => "max_axis",
            OpKind::MaxPool2d { .. } => "max_pool2d",
            OpKind::AvgPool2d { .. } => "avg_pool2d",
            OpKind::AdaptiveAvgPool1x1 => "adaptive_avg_pool2d",
            OpKind::UpsampleNearest(_) => "interpolate",
            OpKind::Reshape(_) => "reshape",
            OpKind::Flatten => "flatten",
            OpKind::FlattenFrom(_) => "flatten_from",
            OpKind::Transpose(_, _) => "transpose",
            OpKind::Permute(_) => "permute",
            OpKind::Slice { .. } => "slice",
            OpKind::Concat(_) => "cat",
            OpKind::Embedding => "embedding",
            OpKind::MaskedFill(_) => "masked_fill",
            OpKind::Identity => "identity",
        }
    }

    /// True for data-movement operators contributing no floating-point
    /// rounding error (views, indexing, concatenation, embedding lookup).
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            OpKind::Input(_)
                | OpKind::Parameter(_)
                | OpKind::Reshape(_)
                | OpKind::Flatten
                | OpKind::FlattenFrom(_)
                | OpKind::Transpose(_, _)
                | OpKind::Permute(_)
                | OpKind::Slice { .. }
                | OpKind::Concat(_)
                | OpKind::Embedding
                | OpKind::MaskedFill(_)
                | OpKind::Identity
                | OpKind::Neg
        )
    }

    /// Floating-point operation count given the input and output shapes,
    /// following the usual multiply-add = 2 FLOPs convention.
    pub fn flops(&self, inputs: &[&Shape], output: &Shape) -> u64 {
        let out_n = output.volume() as u64;
        match self {
            OpKind::Input(_) | OpKind::Parameter(_) => 0,
            OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div | OpKind::Pow => out_n,
            OpKind::Neg
            | OpKind::AddScalar(_)
            | OpKind::MulScalar(_)
            | OpKind::PowScalar(_)
            | OpKind::Sqrt
            | OpKind::Rsqrt
            | OpKind::Exp
            | OpKind::Log
            | OpKind::Sin
            | OpKind::Cos
            | OpKind::Tanh
            | OpKind::Relu
            | OpKind::Sigmoid => out_n,
            // Tanh-approx GELU: ~10 flops per element; SiLU: ~5.
            OpKind::Gelu => 10 * out_n,
            OpKind::Silu => 5 * out_n,
            // Softmax: max + sub + exp + sum + div ≈ 5 per element.
            OpKind::Softmax => 5 * out_n,
            // LayerNorm: two reductions + normalize ≈ 8 per element.
            OpKind::LayerNorm { .. } => 8 * out_n,
            OpKind::RmsNorm { .. } => 6 * out_n,
            OpKind::BatchNorm2d { .. } => 4 * out_n,
            OpKind::GroupNorm { .. } => 8 * out_n,
            OpKind::MatMul => {
                // [.., m, k] @ [.., k, n]: 2*m*k*n per batch element.
                let k = inputs
                    .first()
                    .map(|s| *s.dims().last().unwrap_or(&1))
                    .unwrap_or(1);
                2 * out_n * k as u64
            }
            OpKind::Linear => {
                let k = inputs
                    .first()
                    .map(|s| *s.dims().last().unwrap_or(&1))
                    .unwrap_or(1);
                2 * out_n * k as u64
            }
            OpKind::Conv2d { .. } => {
                let patch: usize = inputs
                    .get(1)
                    .map(|w| w.dims()[1..].iter().product())
                    .unwrap_or(1);
                2 * out_n * patch as u64
            }
            // Quantized GEMMs: the integer multiply-accumulates (2*out*k)
            // plus one quantization op per input element and one
            // dequantize(+bias) op per output element.
            OpKind::QuantMatmul | OpKind::QuantLinear => {
                let k = inputs
                    .first()
                    .map(|s| *s.dims().last().unwrap_or(&1))
                    .unwrap_or(1);
                let in_n: u64 = inputs.iter().map(|s| s.volume() as u64).sum();
                2 * out_n * k as u64 + in_n + out_n
            }
            OpKind::Quantize { .. } | OpKind::Dequantize { .. } => out_n,
            OpKind::MeanAll | OpKind::SumAll => {
                inputs.first().map(|s| s.volume() as u64).unwrap_or(0)
            }
            OpKind::SumAxis(_) | OpKind::MeanAxis(_) | OpKind::MaxAxis(_) => {
                inputs.first().map(|s| s.volume() as u64).unwrap_or(0)
            }
            OpKind::MaxPool2d { kernel, .. } | OpKind::AvgPool2d { kernel, .. } => {
                out_n * (kernel * kernel) as u64
            }
            OpKind::AdaptiveAvgPool1x1 => inputs.first().map(|s| s.volume() as u64).unwrap_or(0),
            OpKind::UpsampleNearest(_)
            | OpKind::Reshape(_)
            | OpKind::Flatten
            | OpKind::FlattenFrom(_)
            | OpKind::Transpose(_, _)
            | OpKind::Permute(_)
            | OpKind::Slice { .. }
            | OpKind::Concat(_)
            | OpKind::Embedding
            | OpKind::MaskedFill(_)
            | OpKind::Identity => 0,
        }
    }
}

impl core::fmt::Display for OpKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(OpKind::MatMul.mnemonic(), "matmul");
        assert_eq!(OpKind::LayerNorm { eps: 1e-5 }.mnemonic(), "layer_norm");
        assert_eq!(
            OpKind::Conv2d {
                stride: 1,
                padding: 0
            }
            .mnemonic(),
            "conv2d"
        );
    }

    #[test]
    fn structural_ops_have_zero_flops() {
        let s = Shape::new(&[4, 4]);
        for op in [
            OpKind::Reshape(vec![16]),
            OpKind::Flatten,
            OpKind::Identity,
            OpKind::Transpose(0, 1),
            OpKind::Embedding,
        ] {
            assert!(op.is_structural(), "{op}");
            assert_eq!(op.flops(&[&s], &s), 0, "{op}");
        }
    }

    #[test]
    fn matmul_flops_formula() {
        let a = Shape::new(&[8, 16]);
        let b = Shape::new(&[16, 4]);
        let out = Shape::new(&[8, 4]);
        assert_eq!(OpKind::MatMul.flops(&[&a, &b], &out), 2 * 8 * 16 * 4);
    }

    #[test]
    fn conv_flops_formula() {
        let x = Shape::new(&[1, 3, 8, 8]);
        let w = Shape::new(&[4, 3, 3, 3]);
        let out = Shape::new(&[1, 4, 6, 6]);
        assert_eq!(
            OpKind::Conv2d {
                stride: 1,
                padding: 0
            }
            .flops(&[&x, &w], &out),
            2 * (4 * 6 * 6) * (3 * 3 * 3)
        );
    }

    #[test]
    fn arithmetic_is_not_structural() {
        assert!(!OpKind::Add.is_structural());
        assert!(!OpKind::Softmax.is_structural());
        assert!(
            OpKind::Neg.is_structural(),
            "negation is sign-flip only, no rounding"
        );
    }
}
