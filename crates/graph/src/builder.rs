//! Tracing-style graph builder.
//!
//! The builder plays the role of `torch.fx` tracing: model code calls
//! builder methods in execution order and gets back [`NodeId`] handles,
//! producing a graph already in canonical topological order.

use std::collections::BTreeMap;

use tao_tensor::Tensor;

use crate::graph::{Graph, Node, NodeId};
use crate::op::OpKind;
use crate::Result;

/// Incremental graph constructor.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    params: BTreeMap<String, Tensor<f32>>,
    num_inputs: usize,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_inputs` placeholder inputs.
    pub fn new(num_inputs: usize) -> Self {
        GraphBuilder {
            nodes: Vec::new(),
            params: BTreeMap::new(),
            num_inputs,
        }
    }

    /// Adds an input placeholder node for input position `index`.
    pub fn input(&mut self, index: usize, name: impl Into<String>) -> NodeId {
        self.push(name.into(), OpKind::Input(index), vec![])
    }

    /// Registers a parameter tensor and adds its access node.
    ///
    /// Re-registering the same name overwrites the tensor (last write
    /// wins), mirroring a state-dict load.
    pub fn parameter(&mut self, name: impl Into<String>, value: Tensor<f32>) -> NodeId {
        let name = name.into();
        self.params.insert(name.clone(), value);
        self.push(name.clone(), OpKind::Parameter(name), vec![])
    }

    /// Adds an operator node.
    pub fn op(&mut self, name: impl Into<String>, kind: OpKind, inputs: &[NodeId]) -> NodeId {
        self.push(name.into(), kind, inputs.to_vec())
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalizes the graph with the given output nodes.
    ///
    /// # Errors
    ///
    /// Returns an error if validation fails (see [`Graph::new`]).
    pub fn finish(self, outputs: Vec<NodeId>) -> Result<Graph> {
        Graph::new(self.nodes, self.params, self.num_inputs, outputs)
    }

    fn push(&mut self, name: String, kind: OpKind, inputs: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            name,
            kind,
            inputs,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = GraphBuilder::new(1);
        assert!(b.is_empty());
        let x = b.input(0, "x");
        let y = b.op("y", OpKind::Relu, &[x]);
        assert_eq!(x, NodeId(0));
        assert_eq!(y, NodeId(1));
        assert_eq!(b.len(), 2);
        let g = b.finish(vec![y]).unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn parameter_registers_tensor() {
        let mut b = GraphBuilder::new(0);
        let w = b.parameter("w", Tensor::<f32>::ones(&[2]));
        let g = b.finish(vec![w]).unwrap();
        assert_eq!(g.param("w").unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn parameter_overwrite_last_wins() {
        let mut b = GraphBuilder::new(0);
        let _w1 = b.parameter("w", Tensor::<f32>::ones(&[1]));
        let w2 = b.parameter("w", Tensor::<f32>::zeros(&[1]));
        let g = b.finish(vec![w2]).unwrap();
        assert_eq!(g.param("w").unwrap().data(), &[0.0]);
    }
}
