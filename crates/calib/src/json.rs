//! Canonical JSON codec for committed threshold artifacts.
//!
//! The Merkle commitment `r_e` hashes one leaf per operator threshold, so
//! the byte encoding must be deterministic across platforms and releases.
//! The build environment is offline (no serde/serde_json), and a committed
//! format should not track a third-party crate's formatting anyway, so this
//! module hand-rolls the tiny subset of JSON the bundle needs: objects with
//! fixed key order, arrays, strings, and finite f64 numbers rendered via
//! Rust's shortest-roundtrip `{:?}` formatting.

use tao_graph::NodeId;

use crate::error::CalibError;
use crate::profile::{OperatorThreshold, PercentilePair, ThresholdBundle};

/// Serializes one operator threshold to its canonical Merkle-leaf bytes.
pub fn threshold_to_json(o: &OperatorThreshold) -> Vec<u8> {
    let mut s = String::with_capacity(256);
    s.push_str("{\"node\":");
    s.push_str(&o.node.0.to_string());
    s.push_str(",\"mnemonic\":");
    write_string(&mut s, &o.mnemonic);
    s.push_str(",\"thresholds\":");
    write_pair(&mut s, &o.thresholds);
    s.push_str(",\"mean_abs_error\":");
    write_f64(&mut s, o.mean_abs_error);
    s.push('}');
    s.into_bytes()
}

/// Parses bytes produced by [`threshold_to_json`].
pub fn threshold_from_json(bytes: &[u8]) -> crate::Result<OperatorThreshold> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| CalibError::Json("leaf is not UTF-8".to_string()))?;
    let (value, rest) = Value::parse(text.trim())?;
    if !rest.trim().is_empty() {
        return Err(CalibError::Json(
            "trailing bytes after JSON value".to_string(),
        ));
    }
    let node = value.field("node")?.as_usize()?;
    let mnemonic = value.field("mnemonic")?.as_str()?.to_string();
    let thresholds = value.field("thresholds")?;
    let pair = PercentilePair {
        abs: thresholds.field("abs")?.as_f64_array()?,
        rel: thresholds.field("rel")?.as_f64_array()?,
    };
    Ok(OperatorThreshold {
        node: NodeId(node),
        mnemonic,
        thresholds: pair,
        mean_abs_error: value.field("mean_abs_error")?.as_f64()?,
    })
}

/// Pretty-prints a whole bundle (reports and tooling; not commitment bytes).
pub fn bundle_to_json_pretty(b: &ThresholdBundle) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"grid\": ");
    write_f64_array(&mut s, &b.grid);
    s.push_str(",\n  \"alpha\": ");
    write_f64(&mut s, b.alpha);
    s.push_str(",\n  \"operators\": [");
    for (i, o) in b.operators.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    ");
        s.push_str(std::str::from_utf8(&threshold_to_json(o)).expect("codec emits UTF-8"));
    }
    if !b.operators.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}");
    s
}

fn write_string(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    // A non-finite value would serialize as `NaN`/`inf`, which the parser
    // rejects — committing unreadable leaf bytes into `r_e` for the
    // deployment's lifetime. Fail loudly instead, in every build profile.
    assert!(
        v.is_finite(),
        "committed thresholds must be finite, got {v}"
    );
    out.push_str(&format!("{v:?}"));
}

fn write_f64_array(out: &mut String, vs: &[f64]) {
    out.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_f64(out, *v);
    }
    out.push(']');
}

fn write_pair(out: &mut String, p: &PercentilePair) {
    out.push_str("{\"abs\":");
    write_f64_array(out, &p.abs);
    out.push_str(",\"rel\":");
    write_f64_array(out, &p.rel);
    out.push('}');
}

/// Parsed JSON value (only the shapes the codec emits).
enum Value {
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    String(String),
    Number(f64),
}

fn err(msg: impl Into<String>) -> CalibError {
    CalibError::Json(msg.into())
}

impl Value {
    /// Parses one value off the front of `s`, returning the remainder.
    fn parse(s: &str) -> crate::Result<(Value, &str)> {
        let s = s.trim_start();
        match s.as_bytes().first() {
            Some(b'{') => {
                let mut rest = s[1..].trim_start();
                let mut fields = Vec::new();
                if let Some(r) = rest.strip_prefix('}') {
                    return Ok((Value::Object(fields), r));
                }
                loop {
                    let (key, r) = parse_string(rest)?;
                    let r = r
                        .trim_start()
                        .strip_prefix(':')
                        .ok_or_else(|| err("expected ':' after object key"))?;
                    let (val, r) = Value::parse(r)?;
                    fields.push((key, val));
                    let r = r.trim_start();
                    if let Some(r2) = r.strip_prefix(',') {
                        rest = r2.trim_start();
                    } else if let Some(r2) = r.strip_prefix('}') {
                        return Ok((Value::Object(fields), r2));
                    } else {
                        return Err(err("expected ',' or '}' in object"));
                    }
                }
            }
            Some(b'[') => {
                let mut rest = s[1..].trim_start();
                let mut items = Vec::new();
                if let Some(r) = rest.strip_prefix(']') {
                    return Ok((Value::Array(items), r));
                }
                loop {
                    let (val, r) = Value::parse(rest)?;
                    items.push(val);
                    let r = r.trim_start();
                    if let Some(r2) = r.strip_prefix(',') {
                        rest = r2.trim_start();
                    } else if let Some(r2) = r.strip_prefix(']') {
                        return Ok((Value::Array(items), r2));
                    } else {
                        return Err(err("expected ',' or ']' in array"));
                    }
                }
            }
            Some(b'"') => {
                let (v, r) = parse_string(s)?;
                Ok((Value::String(v), r))
            }
            Some(_) => {
                let end = s
                    .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                    .unwrap_or(s.len());
                let v = s[..end]
                    .parse::<f64>()
                    .map_err(|_| err(format!("bad number: {:?}", &s[..end.min(24)])))?;
                Ok((Value::Number(v), &s[end..]))
            }
            None => Err(err("unexpected end of input")),
        }
    }

    fn field(&self, name: &str) -> crate::Result<&Value> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| err(format!("missing field `{name}`"))),
            _ => Err(err(format!("expected object while reading `{name}`"))),
        }
    }

    fn as_f64(&self) -> crate::Result<f64> {
        match self {
            Value::Number(v) => Ok(*v),
            _ => Err(err("expected number")),
        }
    }

    fn as_usize(&self) -> crate::Result<usize> {
        // Bound at 2^53: beyond that f64 loses integer exactness (and
        // `usize::MAX as f64` rounds up to 2^64, so comparing against it
        // would admit out-of-range values that saturate on cast).
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0;
        let v = self.as_f64()?;
        if v.fract() != 0.0 || !(0.0..MAX_EXACT).contains(&v) {
            return Err(err(format!("expected unsigned integer, got {v}")));
        }
        Ok(v as usize)
    }

    fn as_str(&self) -> crate::Result<&str> {
        match self {
            Value::String(v) => Ok(v),
            _ => Err(err("expected string")),
        }
    }

    fn as_f64_array(&self) -> crate::Result<Vec<f64>> {
        match self {
            Value::Array(items) => items.iter().map(Value::as_f64).collect(),
            _ => Err(err("expected array")),
        }
    }
}

fn parse_string(s: &str) -> crate::Result<(String, &str)> {
    let s = s
        .trim_start()
        .strip_prefix('"')
        .ok_or_else(|| err("expected string"))?;
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => match chars.next().map(|(_, e)| e) {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4)
                        .filter_map(|_| chars.next().map(|(_, h)| h))
                        .collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| err(format!("bad \\u escape: {hex:?}")))?;
                    out.push(char::from_u32(code).ok_or_else(|| err("invalid \\u code point"))?);
                }
                other => return Err(err(format!("bad escape: {other:?}"))),
            },
            c => out.push(c),
        }
    }
    Err(err("unterminated string"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile::PERCENTILE_GRID;

    fn sample() -> OperatorThreshold {
        OperatorThreshold {
            node: NodeId(13),
            mnemonic: "soft\"max\\\n".to_string(),
            thresholds: PercentilePair {
                abs: vec![0.0, 1e-6, 2.5e-4],
                rel: vec![3.25, 1.0 / 3.0],
            },
            mean_abs_error: 5.5e-9,
        }
    }

    #[test]
    fn threshold_roundtrips_exactly() {
        let o = sample();
        let bytes = threshold_to_json(&o);
        let back = threshold_from_json(&bytes).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn encoding_is_deterministic() {
        let o = sample();
        assert_eq!(threshold_to_json(&o), threshold_to_json(&o.clone()));
    }

    #[test]
    fn pretty_bundle_contains_each_operator() {
        let b = ThresholdBundle {
            grid: PERCENTILE_GRID.to_vec(),
            alpha: 3.0,
            operators: vec![sample()],
        };
        let text = bundle_to_json_pretty(&b);
        assert!(text.contains("\"alpha\": 3.0"));
        assert!(text.contains("\"node\":13"));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(threshold_from_json(b"{").is_err());
        assert!(threshold_from_json(b"{}").is_err());
        assert!(threshold_from_json(b"[1,2]").is_err());
        assert!(threshold_from_json(b"{\"node\":1.5}").is_err());
    }
}
