//! Cross-device calibration sweep (§3.2, Eq. 1–7).

use std::collections::HashMap;

use parking_lot::Mutex;
use tao_device::Fleet;
use tao_graph::{execute, Graph, NodeId};
use tao_tensor::Tensor;

use crate::error::CalibError;
use crate::profile::{OperatorThreshold, PercentilePair, ThresholdBundle, DEFAULT_EPS};
use crate::Result;

/// Raw calibration output: per-operator envelopes, per-sample sequences
/// (for the stability diagnostics), and mean-error summaries.
#[derive(Debug, Clone)]
pub struct CalibrationRecord {
    /// Compute-node ids in canonical order.
    pub nodes: Vec<NodeId>,
    /// Operator mnemonics, parallel to `nodes`.
    pub mnemonics: Vec<String>,
    /// Max-envelope percentile profiles across devices and samples
    /// (Eq. 5–6), parallel to `nodes`.
    pub envelopes: Vec<PercentilePair>,
    /// Per-sample profiles (envelope across device pairs within each
    /// sample), keyed by node: the sequences Appendix B's diagnostics run
    /// over.
    pub sequences: HashMap<NodeId, Vec<PercentilePair>>,
    /// Mean element-wise absolute cross-device error per node.
    pub mean_abs: HashMap<NodeId, f64>,
}

impl CalibrationRecord {
    /// Builds the committed threshold bundle with safety factor `alpha`
    /// from the raw max envelope (Eq. 5–7).
    pub fn into_thresholds(self, alpha: f64) -> ThresholdBundle {
        self.into_thresholds_with(alpha, crate::estimator::TailEstimator::RawMax)
    }

    /// Builds the committed threshold bundle with safety factor `alpha`
    /// using the given tail estimator. [`TailEstimator::RawMax`] reproduces
    /// [`CalibrationRecord::into_thresholds`] exactly; the smoothed-tail
    /// variant recomputes each envelope from the per-sample sequences and
    /// dominates the raw envelope pointwise.
    ///
    /// [`TailEstimator::RawMax`]: crate::estimator::TailEstimator::RawMax
    pub fn into_thresholds_with(
        self,
        alpha: f64,
        estimator: crate::estimator::TailEstimator,
    ) -> ThresholdBundle {
        let operators = self
            .nodes
            .iter()
            .zip(&self.mnemonics)
            .zip(&self.envelopes)
            .map(|((&node, mnemonic), raw)| {
                let mut env = match estimator {
                    crate::estimator::TailEstimator::RawMax => raw.clone(),
                    crate::estimator::TailEstimator::SmoothedTail { k } => {
                        crate::estimator::smoothed_envelope(
                            self.sequences.get(&node).map_or(&[][..], Vec::as_slice),
                            k,
                        )
                    }
                };
                // Float safety net: the smoothed estimate dominates the max
                // envelope by construction; make that exact.
                env.envelope(raw);
                OperatorThreshold {
                    node,
                    mnemonic: mnemonic.clone(),
                    thresholds: env.inflate(alpha),
                    mean_abs_error: self.mean_abs.get(&node).copied().unwrap_or(0.0),
                }
            })
            .collect();
        ThresholdBundle {
            grid: crate::percentile::PERCENTILE_GRID.to_vec(),
            alpha,
            operators,
        }
    }
}

/// Runs the offline cross-device calibration: every sample is executed on
/// every fleet device, and per-operator error percentile profiles are
/// collected over all ordered device pairs (Eq. 1–6).
///
/// Samples are swept in parallel (scoped threads); each worker owns its
/// full set of device traces, and only the cheap profile merge is locked.
///
/// # Errors
///
/// Returns an error for an empty fleet/sample set or if execution fails.
pub fn calibrate(
    graph: &Graph,
    samples: &[Vec<Tensor<f32>>],
    fleet: &Fleet,
) -> Result<CalibrationRecord> {
    calibrate_inner(graph, samples, fleet, 0)
}

/// [`calibrate`] with the deployment's static report threaded in: the
/// per-worker error scratch buffers and every per-operator envelope are
/// sized from the report's inferred shapes *before* the first forward
/// pass, so the calibration hot loop performs no per-sample allocation.
///
/// Produces a [`CalibrationRecord`] identical to [`calibrate`]'s — the
/// report only informs allocation, never the numbers.
///
/// # Errors
///
/// Returns an error for an empty fleet/sample set or if execution fails.
pub fn calibrate_with_report(
    graph: &Graph,
    samples: &[Vec<Tensor<f32>>],
    fleet: &Fleet,
    report: &tao_analysis::StaticReport,
) -> Result<CalibrationRecord> {
    // The largest inferred operator output determines the scratch size: the
    // element-wise error pass never produces more entries than the larger
    // operand, and both traces executed the same graph.
    let scratch = report
        .shapes
        .iter()
        .flatten()
        .map(|dims| dims.iter().product::<usize>())
        .max()
        .unwrap_or(0);
    calibrate_inner(graph, samples, fleet, scratch)
}

fn calibrate_inner(
    graph: &Graph,
    samples: &[Vec<Tensor<f32>>],
    fleet: &Fleet,
    scratch_elems: usize,
) -> Result<CalibrationRecord> {
    if fleet.len() < 2 {
        return Err(CalibError::NotEnoughDevices(fleet.len()));
    }
    if samples.is_empty() {
        return Err(CalibError::NoSamples);
    }
    let compute_nodes = graph.traced_nodes();
    let mnemonics: Vec<String> = compute_nodes
        .iter()
        .map(|&id| graph.node(id).map(|n| n.kind.mnemonic().to_string()))
        .collect::<core::result::Result<_, _>>()
        .map_err(|e| CalibError::Graph(e.to_string()))?;

    struct Shared {
        envelopes: Vec<PercentilePair>,
        sequences: HashMap<NodeId, Vec<PercentilePair>>,
        sum_abs: HashMap<NodeId, (f64, u64)>,
    }
    let shared = Mutex::new(Shared {
        envelopes: vec![PercentilePair::zero(); compute_nodes.len()],
        sequences: compute_nodes
            .iter()
            .map(|&n| (n, vec![PercentilePair::zero(); samples.len()]))
            .collect(),
        sum_abs: compute_nodes.iter().map(|&n| (n, (0.0, 0))).collect(),
    });
    let errors: Mutex<Vec<CalibError>> = Mutex::new(Vec::new());

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let chunk = samples.len().div_ceil(threads);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|scope| {
            for (ti, sample_chunk) in samples.chunks(chunk).enumerate() {
                let shared = &shared;
                let errors = &errors;
                let compute_nodes = &compute_nodes;
                scope.spawn(move || {
                    // Per-worker scratch, allocated once before the first
                    // forward pass (pre-sized from the static report when
                    // one was provided) and reused across every
                    // (sample × device-pair × node) error computation.
                    let mut abs: Vec<f64> = Vec::with_capacity(scratch_elems);
                    let mut rel: Vec<f64> = Vec::with_capacity(scratch_elems);
                    let mut local: Vec<PercentilePair> =
                        vec![PercentilePair::zero(); compute_nodes.len()];
                    let mut local_abs: Vec<(f64, u64)> = vec![(0.0, 0); compute_nodes.len()];
                    for (si, sample) in sample_chunk.iter().enumerate() {
                        let s = ti * chunk + si;
                        // Execute on every device.
                        let mut traces = Vec::with_capacity(fleet.len());
                        for dev in fleet.devices() {
                            match execute(graph, sample, dev.config(), None) {
                                Ok(t) => traces.push(t),
                                Err(e) => {
                                    errors.lock().push(CalibError::Graph(e.to_string()));
                                    return;
                                }
                            }
                        }
                        // Per-sample envelope across ordered device pairs.
                        for p in &mut local {
                            p.abs.fill(0.0);
                            p.rel.fill(0.0);
                        }
                        local_abs.fill((0.0, 0));
                        for j in 0..traces.len() {
                            for k in j + 1..traces.len() {
                                for (ci, &node) in compute_nodes.iter().enumerate() {
                                    let a = &traces[j].values[node.0];
                                    let b = &traces[k].values[node.0];
                                    crate::profile::elementwise_errors_into(
                                        a, b, DEFAULT_EPS, &mut abs, &mut rel,
                                    );
                                    let prof = PercentilePair {
                                        abs: crate::percentile::grid_profile(&abs),
                                        rel: crate::percentile::grid_profile(&rel),
                                    };
                                    local[ci].envelope(&prof);
                                    local_abs[ci].0 += abs.iter().sum::<f64>();
                                    local_abs[ci].1 += abs.len() as u64;
                                }
                            }
                        }
                        let mut guard = shared.lock();
                        for (ci, &node) in compute_nodes.iter().enumerate() {
                            guard.envelopes[ci].envelope(&local[ci]);
                            if let Some(seq) = guard.sequences.get_mut(&node) {
                                seq[s] = local[ci].clone();
                            }
                            if let Some(acc) = guard.sum_abs.get_mut(&node) {
                                acc.0 += local_abs[ci].0;
                                acc.1 += local_abs[ci].1;
                            }
                        }
                    }
                });
            }
        })
    }))
    .map_err(|_| CalibError::Worker)?;

    let errs = errors.into_inner();
    if let Some(e) = errs.into_iter().next() {
        return Err(e);
    }
    let shared = shared.into_inner();
    let mean_abs = shared
        .sum_abs
        .into_iter()
        .map(|(n, (sum, count))| (n, if count == 0 { 0.0 } else { sum / count as f64 }))
        .collect();
    Ok(CalibrationRecord {
        nodes: compute_nodes,
        mnemonics,
        envelopes: shared.envelopes,
        sequences: shared.sequences,
        mean_abs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::error_profile;
    use crate::profile::DEFAULT_ALPHA;
    use tao_graph::{GraphBuilder, OpKind};

    fn small_model() -> Graph {
        let mut b = GraphBuilder::new(1);
        let x = b.input(0, "x");
        let w = b.parameter("w", Tensor::<f32>::rand_uniform(&[96, 32], -1.0, 1.0, 1));
        let m = b.op("m", OpKind::MatMul, &[x, w]);
        let s = b.op("s", OpKind::Softmax, &[m]);
        b.finish(vec![s]).unwrap()
    }

    fn dataset(n: usize) -> Vec<Vec<Tensor<f32>>> {
        (0..n)
            .map(|i| {
                vec![Tensor::<f32>::rand_uniform(
                    &[4, 96],
                    -2.0,
                    2.0,
                    100 + i as u64,
                )]
            })
            .collect()
    }

    #[test]
    fn calibration_produces_nonzero_thresholds() {
        let g = small_model();
        let record = calibrate(&g, &dataset(6), &Fleet::standard()).unwrap();
        assert_eq!(record.nodes.len(), 2);
        // The matmul has a real reduction: cross-device errors must appear.
        let matmul_env = &record.envelopes[0];
        assert!(
            matmul_env.abs.iter().any(|&v| v > 0.0),
            "matmul envelope all zero: {:?}",
            matmul_env.abs
        );
        let bundle = record.into_thresholds(DEFAULT_ALPHA);
        assert_eq!(bundle.alpha, 3.0);
        assert_eq!(bundle.operators.len(), 2);
    }

    #[test]
    fn thresholds_cover_fresh_honest_executions() {
        // False-positive check at calibration scale: an unseen honest input
        // on any fleet device stays within the α-inflated thresholds.
        let g = small_model();
        let fleet = Fleet::standard();
        let record = calibrate(&g, &dataset(12), &fleet).unwrap();
        let bundle = record.into_thresholds(DEFAULT_ALPHA);
        let fresh = vec![Tensor::<f32>::rand_uniform(&[4, 96], -2.0, 2.0, 999)];
        let a = execute(&g, &fresh, fleet.devices()[0].config(), None).unwrap();
        let b = execute(&g, &fresh, fleet.devices()[3].config(), None).unwrap();
        for &node in &bundle.operators.iter().map(|o| o.node).collect::<Vec<_>>() {
            let prof = error_profile(&a.values[node.0], &b.values[node.0], DEFAULT_EPS);
            let exc = bundle.exceedance(node, &prof).unwrap();
            assert!(exc <= 1.0, "node {node}: exceedance {exc}");
        }
    }

    #[test]
    fn sequences_have_one_entry_per_sample() {
        let g = small_model();
        let record = calibrate(&g, &dataset(5), &Fleet::standard()).unwrap();
        for seq in record.sequences.values() {
            assert_eq!(seq.len(), 5);
        }
    }

    #[test]
    fn smoothed_estimator_dominates_raw_max() {
        use crate::estimator::TailEstimator;
        let g = small_model();
        let record = calibrate(&g, &dataset(8), &Fleet::standard()).unwrap();
        let raw = record
            .clone()
            .into_thresholds_with(DEFAULT_ALPHA, TailEstimator::RawMax);
        let exact = record.clone().into_thresholds(DEFAULT_ALPHA);
        assert_eq!(raw, exact, "RawMax estimator must match into_thresholds");
        let smoothed =
            record.into_thresholds_with(DEFAULT_ALPHA, TailEstimator::smoothed_default());
        for (r, s) in raw.operators.iter().zip(&smoothed.operators) {
            assert_eq!(r.node, s.node);
            for (a, b) in r.thresholds.abs.iter().zip(&s.thresholds.abs) {
                assert!(b >= a, "smoothed abs threshold {b} below raw {a}");
            }
            for (a, b) in r.thresholds.rel.iter().zip(&s.thresholds.rel) {
                assert!(b >= a, "smoothed rel threshold {b} below raw {a}");
            }
        }
        // The matmul tail must gain real slack, not just tie the max.
        let (r0, s0) = (&raw.operators[0], &smoothed.operators[0]);
        assert!(
            s0.thresholds.abs.iter().sum::<f64>() > r0.thresholds.abs.iter().sum::<f64>(),
            "smoothed-tail estimator added no slack over the raw envelope"
        );
    }

    #[test]
    fn presized_calibration_matches_unsized_exactly() {
        // The static report only informs allocation: thresholds from the
        // pre-sized path must be bit-identical to the plain path.
        let g = small_model();
        let fleet = Fleet::standard();
        let samples = dataset(6);
        let report = tao_analysis::analyze(&g, &[vec![4, 96]]);
        let plain = calibrate(&g, &samples, &fleet)
            .unwrap()
            .into_thresholds(DEFAULT_ALPHA);
        let presized = calibrate_with_report(&g, &samples, &fleet, &report)
            .unwrap()
            .into_thresholds(DEFAULT_ALPHA);
        assert_eq!(plain, presized);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let g = small_model();
        assert!(matches!(
            calibrate(
                &g,
                &dataset(2),
                &Fleet::new(vec![tao_device::Device::reference()])
            ),
            Err(CalibError::NotEnoughDevices(1))
        ));
        assert!(matches!(
            calibrate(&g, &[], &Fleet::standard()),
            Err(CalibError::NoSamples)
        ));
    }

    #[test]
    fn mean_abs_is_positive_for_reductions() {
        let g = small_model();
        let record = calibrate(&g, &dataset(4), &Fleet::standard()).unwrap();
        let matmul = record.nodes[0];
        assert!(record.mean_abs[&matmul] > 0.0);
        assert!(record.mean_abs[&matmul] < 1e-3);
    }
}
