//! The nondecreasing cap curve `C_i : [0,1] → R≥0` (Eq. 8) used by the
//! empirical feasible set and its order-statistics projection.

use crate::percentile::PERCENTILE_GRID;
use crate::profile::PercentilePair;

/// Piecewise-linear nondecreasing cap curve through `(0, 0)`, the committed
/// `(p_k, τ_abs(p_k))` pairs, and `(1, τ_abs(1))`.
#[derive(Debug, Clone, PartialEq)]
pub struct CapCurve {
    // Knots (rank in [0,1], cap), strictly increasing in rank and
    // nondecreasing in cap.
    knots: Vec<(f64, f64)>,
}

impl CapCurve {
    /// Builds the curve from committed absolute thresholds on the grid.
    pub fn from_thresholds(thresholds: &PercentilePair) -> Self {
        let mut knots = vec![(0.0f64, 0.0f64)];
        let mut prev_cap = 0.0f64;
        for (&p, &tau) in PERCENTILE_GRID.iter().zip(&thresholds.abs) {
            let rank = p / 100.0;
            // Enforce monotonicity: caps never decrease with rank.
            prev_cap = prev_cap.max(tau);
            if rank > 0.0 {
                knots.push((rank, prev_cap));
            }
        }
        if knots.last().map(|&(r, _)| r < 1.0).unwrap_or(true) {
            knots.push((1.0, prev_cap));
        }
        CapCurve { knots }
    }

    /// Cap value at rank `r ∈ [0, 1]` (clamped).
    pub fn at(&self, r: f64) -> f64 {
        let r = r.clamp(0.0, 1.0);
        let mut prev = self.knots[0];
        for &(kr, kc) in &self.knots[1..] {
            if r <= kr {
                let span = kr - prev.0;
                if span <= 0.0 {
                    return kc;
                }
                let frac = (r - prev.0) / span;
                return prev.1 + frac * (kc - prev.1);
            }
            prev = (kr, kc);
        }
        prev.1
    }

    /// True when the sorted magnitudes `|Δ|` lie under the curve at every
    /// order-statistic rank `r_k = (k − ½)/n` — membership in the
    /// empirical feasible set `F^emp` (Eq. 8).
    pub fn admits(&self, magnitudes: &[f64]) -> bool {
        let n = magnitudes.len();
        if n == 0 {
            return true;
        }
        let mut sorted: Vec<f64> = magnitudes.iter().map(|m| m.abs()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        sorted.iter().enumerate().all(|(k, &m)| {
            let r = (k as f64 + 0.5) / n as f64;
            m <= self.at(r) + f64::EPSILON
        })
    }

    /// Projects a perturbation onto the feasible set by clipping order
    /// statistics against the caps and restoring sign and position
    /// (Eq. 12). Returns the projected values.
    pub fn project(&self, values: &[f32]) -> Vec<f32> {
        let n = values.len();
        if n == 0 {
            return Vec::new();
        }
        // Sort indices by |value| ascending.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            values[i]
                .abs()
                .partial_cmp(&values[j].abs())
                .expect("finite perturbations")
        });
        let mut out = vec![0.0f32; n];
        let mut prev_cap = 0.0f64;
        for (k, &idx) in order.iter().enumerate() {
            let r = (k as f64 + 0.5) / n as f64;
            // Monotone caps.
            prev_cap = prev_cap.max(self.at(r));
            let mag = (values[idx].abs() as f64).min(prev_cap);
            let mut m32 = mag as f32;
            // Casting can round up past the cap; step down one ULP if so.
            if (m32 as f64) > prev_cap {
                m32 = f32::from_bits(m32.to_bits().saturating_sub(1));
            }
            out[idx] = m32 * values[idx].signum();
        }
        out
    }

    /// Largest cap (the `p = 100` threshold).
    pub fn max_cap(&self) -> f64 {
        self.knots.last().map(|&(_, c)| c).unwrap_or(0.0)
    }

    /// Returns a scaled copy (diagnostic `α` scaling).
    pub fn scaled(&self, alpha: f64) -> CapCurve {
        CapCurve {
            knots: self.knots.iter().map(|&(r, c)| (r, c * alpha)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_thresholds() -> PercentilePair {
        // τ_abs rises linearly with the percentile.
        let abs: Vec<f64> = PERCENTILE_GRID.iter().map(|&p| p * 1e-8).collect();
        PercentilePair {
            abs,
            rel: vec![0.0; PERCENTILE_GRID.len()],
        }
    }

    #[test]
    fn curve_interpolates_and_clamps() {
        let c = CapCurve::from_thresholds(&linear_thresholds());
        assert_eq!(c.at(0.0), 0.0);
        assert!((c.at(1.0) - 1e-6).abs() < 1e-12);
        assert!((c.at(0.5) - 0.5e-6).abs() < 1e-9);
        assert_eq!(c.at(-1.0), 0.0);
        assert_eq!(c.at(2.0), c.at(1.0));
    }

    #[test]
    fn monotone_even_if_thresholds_dip() {
        let mut t = linear_thresholds();
        t.abs[10] = 0.0; // Artificial dip.
        let c = CapCurve::from_thresholds(&t);
        let mut prev = 0.0;
        for i in 0..=100 {
            let v = c.at(i as f64 / 100.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn admits_small_rejects_large() {
        let c = CapCurve::from_thresholds(&linear_thresholds());
        let small = vec![1e-9; 16];
        assert!(c.admits(&small));
        let large = vec![1e-5; 16];
        assert!(!c.admits(&large));
        assert!(c.admits(&[]));
    }

    #[test]
    fn projection_lands_in_feasible_set() {
        let c = CapCurve::from_thresholds(&linear_thresholds());
        let raw: Vec<f32> = (0..64)
            .map(|i| (if i % 2 == 0 { 1.0 } else { -1.0 }) * 1e-5 * (1.0 + i as f32))
            .collect();
        let proj = c.project(&raw);
        let mags: Vec<f64> = proj.iter().map(|&v| v.abs() as f64).collect();
        assert!(c.admits(&mags));
        // Signs are preserved.
        for (r, p) in raw.iter().zip(&proj) {
            assert!(r.signum() == p.signum() || *p == 0.0);
        }
    }

    #[test]
    fn projection_is_identity_inside() {
        let c = CapCurve::from_thresholds(&linear_thresholds());
        let small: Vec<f32> = vec![1e-10, -1e-10, 5e-11, 0.0];
        let proj = c.project(&small);
        for (a, b) in small.iter().zip(&proj) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn scaled_curve() {
        let c = CapCurve::from_thresholds(&linear_thresholds());
        let c3 = c.scaled(3.0);
        assert!((c3.at(1.0) - 3.0 * c.at(1.0)).abs() < 1e-15);
        assert!((c3.max_cap() - 3.0 * c.max_cap()).abs() < 1e-15);
    }
}
