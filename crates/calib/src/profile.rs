//! Per-operator empirical error profiles and committed threshold bundles.

use tao_graph::NodeId;
use tao_tensor::Tensor;

use crate::percentile::{grid_profile, PERCENTILE_GRID};

/// Default division-by-zero guard for relative errors.
pub const DEFAULT_EPS: f64 = 1e-12;

/// Default threshold safety factor `α` (Eq. 7).
pub const DEFAULT_ALPHA: f64 = 3.0;

/// Absolute and relative percentile-value vectors over the committed grid.
#[derive(Debug, Clone, PartialEq)]
pub struct PercentilePair {
    /// Absolute-error percentiles `P_abs(p)`.
    pub abs: Vec<f64>,
    /// Relative-error percentiles `P_rel(p)`.
    pub rel: Vec<f64>,
}

impl PercentilePair {
    /// All-zero profile (used for structural operators).
    pub fn zero() -> Self {
        PercentilePair {
            abs: vec![0.0; PERCENTILE_GRID.len()],
            rel: vec![0.0; PERCENTILE_GRID.len()],
        }
    }

    /// Elementwise max-envelope with another pair (Eq. 5–6).
    pub fn envelope(&mut self, other: &PercentilePair) {
        for (a, b) in self.abs.iter_mut().zip(&other.abs) {
            *a = a.max(*b);
        }
        for (a, b) in self.rel.iter_mut().zip(&other.rel) {
            *a = a.max(*b);
        }
    }

    /// Multiplies every percentile value by `alpha` (Eq. 7).
    pub fn inflate(&self, alpha: f64) -> PercentilePair {
        PercentilePair {
            abs: self.abs.iter().map(|v| v * alpha).collect(),
            rel: self.rel.iter().map(|v| v * alpha).collect(),
        }
    }
}

/// Element-wise absolute and relative errors between two executions of the
/// same operator (Eq. 1–2), flattened to 1-D.
pub fn elementwise_errors(a: &Tensor<f32>, b: &Tensor<f32>, eps: f64) -> (Vec<f64>, Vec<f64>) {
    let mut abs = Vec::new();
    let mut rel = Vec::new();
    elementwise_errors_into(a, b, eps, &mut abs, &mut rel);
    (abs, rel)
}

/// Allocation-free variant of [`elementwise_errors`]: clears `abs`/`rel` and
/// writes into them, reusing whatever capacity the caller pre-sized. The
/// calibration hot loop calls this with scratch vectors sized from the
/// deployment's static report so no per-sample allocation happens.
pub fn elementwise_errors_into(
    a: &Tensor<f32>,
    b: &Tensor<f32>,
    eps: f64,
    abs: &mut Vec<f64>,
    rel: &mut Vec<f64>,
) {
    let n = a.len().min(b.len());
    abs.clear();
    rel.clear();
    abs.reserve(n);
    rel.reserve(n);
    for i in 0..n {
        let x = a.data()[i] as f64;
        let y = b.data()[i] as f64;
        let d = (x - y).abs();
        abs.push(d);
        rel.push(d / (x.abs() + eps));
    }
}

/// Percentile profiles of the element-wise errors between two outputs
/// (Eq. 3–4).
pub fn error_profile(a: &Tensor<f32>, b: &Tensor<f32>, eps: f64) -> PercentilePair {
    let (abs, rel) = elementwise_errors(a, b, eps);
    PercentilePair {
        abs: grid_profile(&abs),
        rel: grid_profile(&rel),
    }
}

/// Calibrated thresholds for one operator: the α-inflated max-envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorThreshold {
    /// Operator node id in the canonical order.
    pub node: NodeId,
    /// Operator mnemonic (for reports; not load-bearing).
    pub mnemonic: String,
    /// Thresholds `τ_abs(p)`, `τ_rel(p)` over the grid.
    pub thresholds: PercentilePair,
    /// Mean absolute cross-device error observed in calibration (for the
    /// error-vs-depth and heatmap figures).
    pub mean_abs_error: f64,
}

/// The committed threshold bundle: grid, safety factor, and per-operator
/// thresholds in canonical node order. Serialized into the `r_e` Merkle
/// commitment and fixed for the lifetime of a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdBundle {
    /// The percentile grid `P`.
    pub grid: Vec<f64>,
    /// Safety factor `α` applied to the raw envelopes.
    pub alpha: f64,
    /// Per-operator thresholds (compute operators only).
    pub operators: Vec<OperatorThreshold>,
}

impl ThresholdBundle {
    /// Looks up the threshold entry for a node.
    pub fn for_node(&self, node: NodeId) -> Option<&OperatorThreshold> {
        self.operators.iter().find(|o| o.node == node)
    }

    /// Serializes each operator entry to a Merkle leaf (canonical JSON; see
    /// [`crate::json`]).
    pub fn to_leaves(&self) -> Vec<Vec<u8>> {
        self.operators
            .iter()
            .map(crate::json::threshold_to_json)
            .collect()
    }

    /// The maximum observed-vs-threshold ratio `p^max_i` of Eq. 15 for an
    /// observed error pair against this bundle's entry for `node`.
    ///
    /// An operator whose whole profile is zero is *exact* (structural or
    /// bit-reproducible): any nonzero observation is infinitely offending.
    /// For a tolerance-calibrated operator, individual zero grid points
    /// (typically the low-percentile end, where calibration happened to see
    /// exact agreement) are vacuous constraints and are skipped — a nonzero
    /// minimum error on a fresh honest input is not evidence of fraud, and
    /// the nonzero upper grid points still bind.
    pub fn exceedance(&self, node: NodeId, observed: &PercentilePair) -> Option<f64> {
        let entry = self.for_node(node)?;
        let exact = entry
            .thresholds
            .abs
            .iter()
            .chain(&entry.thresholds.rel)
            .all(|&t| t == 0.0);
        let mut worst: f64 = 0.0;
        for (obs, thr) in observed
            .abs
            .iter()
            .zip(&entry.thresholds.abs)
            .chain(observed.rel.iter().zip(&entry.thresholds.rel))
        {
            let r = if *thr > 0.0 {
                obs / thr
            } else if exact && *obs > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            worst = worst.max(r);
        }
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_errors_basic() {
        let a = Tensor::<f32>::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![1.5, 2.0], &[2]).unwrap();
        let (abs, rel) = elementwise_errors(&a, &b, 0.0);
        assert_eq!(abs, vec![0.5, 0.0]);
        assert_eq!(rel, vec![0.5, 0.0]);
    }

    #[test]
    fn identical_outputs_zero_profile() {
        let a = Tensor::<f32>::rand_uniform(&[64], -1.0, 1.0, 1);
        let p = error_profile(&a, &a, DEFAULT_EPS);
        assert!(p.abs.iter().all(|&v| v == 0.0));
        assert!(p.rel.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn envelope_takes_max() {
        let mut a = PercentilePair {
            abs: vec![1.0, 5.0],
            rel: vec![0.1, 0.2],
        };
        let b = PercentilePair {
            abs: vec![2.0, 3.0],
            rel: vec![0.05, 0.4],
        };
        a.envelope(&b);
        assert_eq!(a.abs, vec![2.0, 5.0]);
        assert_eq!(a.rel, vec![0.1, 0.4]);
    }

    #[test]
    fn inflate_scales() {
        let p = PercentilePair {
            abs: vec![1.0],
            rel: vec![2.0],
        };
        let q = p.inflate(3.0);
        assert_eq!(q.abs, vec![3.0]);
        assert_eq!(q.rel, vec![6.0]);
    }

    #[test]
    fn exceedance_detects_violation() {
        let bundle = ThresholdBundle {
            grid: PERCENTILE_GRID.to_vec(),
            alpha: 3.0,
            operators: vec![OperatorThreshold {
                node: NodeId(5),
                mnemonic: "matmul".into(),
                thresholds: PercentilePair {
                    abs: vec![1e-6; PERCENTILE_GRID.len()],
                    rel: vec![1e-5; PERCENTILE_GRID.len()],
                },
                mean_abs_error: 1e-7,
            }],
        };
        let ok = PercentilePair {
            abs: vec![5e-7; PERCENTILE_GRID.len()],
            rel: vec![5e-6; PERCENTILE_GRID.len()],
        };
        assert!(bundle.exceedance(NodeId(5), &ok).unwrap() <= 1.0);
        let bad = PercentilePair {
            abs: vec![5e-6; PERCENTILE_GRID.len()],
            rel: vec![5e-6; PERCENTILE_GRID.len()],
        };
        assert!(bundle.exceedance(NodeId(5), &bad).unwrap() > 1.0);
        assert!(bundle.exceedance(NodeId(7), &ok).is_none());
    }

    #[test]
    fn exceedance_zero_threshold_is_strict() {
        let bundle = ThresholdBundle {
            grid: PERCENTILE_GRID.to_vec(),
            alpha: 3.0,
            operators: vec![OperatorThreshold {
                node: NodeId(0),
                mnemonic: "relu".into(),
                thresholds: PercentilePair::zero(),
                mean_abs_error: 0.0,
            }],
        };
        let exact = PercentilePair::zero();
        assert_eq!(bundle.exceedance(NodeId(0), &exact).unwrap(), 0.0);
        let mut off = PercentilePair::zero();
        off.abs[3] = 1e-9;
        assert!(bundle.exceedance(NodeId(0), &off).unwrap().is_infinite());
    }

    #[test]
    fn leaves_roundtrip_json() {
        let bundle = ThresholdBundle {
            grid: PERCENTILE_GRID.to_vec(),
            alpha: 3.0,
            operators: vec![OperatorThreshold {
                node: NodeId(1),
                mnemonic: "softmax".into(),
                thresholds: PercentilePair::zero(),
                mean_abs_error: 0.0,
            }],
        };
        let leaves = bundle.to_leaves();
        assert_eq!(leaves.len(), 1);
        let back: OperatorThreshold = crate::json::threshold_from_json(&leaves[0]).unwrap();
        assert_eq!(back, bundle.operators[0]);
    }
}
