//! Stability diagnostics for empirical percentile profiles (Appendix B).

use crate::percentile::{grid_index, median, percentile};
use crate::CalibrationRecord;

/// Relative-scale guard `ε` for the symmetric relative change.
pub const STAB_EPS: f64 = 1e-18;

/// Default tail/window length `W`.
pub const DEFAULT_WINDOW: usize = 10;

/// The four per-(operator, percentile) diagnostics of Appendix B.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityMetrics {
    /// (D1) Short-horizon relative drift of the running median.
    pub sup_norm: f64,
    /// (D2) Maximum leave-one-out influence.
    pub jackknife: f64,
    /// (D3) Tail adjustment over the last `W` steps.
    pub tail_adj: f64,
    /// (D4) Rolling-window variability.
    pub roll_sd: f64,
}

/// Symmetric relative change `δ(a, b) = 2|a-b| / (|a| + |b| + ε)` (Eq. 38).
pub fn sym_rel_change(a: f64, b: f64) -> f64 {
    2.0 * (a - b).abs() / (a.abs() + b.abs() + STAB_EPS)
}

/// Running medians `θ̃(k) = median(y_1..y_k)` for `k = 1..n` (Eq. 37).
pub fn running_medians(seq: &[f64]) -> Vec<f64> {
    (1..=seq.len()).map(|k| median(&seq[..k])).collect()
}

/// Computes the four diagnostics for one per-sample sequence.
///
/// Non-finite values are excluded up front. Returns all-zero metrics for
/// sequences shorter than two points.
pub fn diagnostics(seq: &[f64], w: usize) -> StabilityMetrics {
    let seq: Vec<f64> = seq.iter().copied().filter(|v| v.is_finite()).collect();
    let n = seq.len();
    if n < 2 {
        return StabilityMetrics {
            sup_norm: 0.0,
            jackknife: 0.0,
            tail_adj: 0.0,
            roll_sd: 0.0,
        };
    }
    let w = w.clamp(1, n - 1);
    let rm = running_medians(&seq);
    let theta_n = rm[n - 1];
    let denom = theta_n.abs() + STAB_EPS;

    // (D1) SupNorm over the last W steps.
    let sup_norm = (n - w..n)
        .map(|k| sym_rel_change(theta_n, rm[k - 1]))
        .fold(0.0f64, f64::max);

    // (D2) Jackknife: leave-one-out medians.
    let jackknife = (0..n)
        .map(|t| {
            let mut loo: Vec<f64> = Vec::with_capacity(n - 1);
            loo.extend_from_slice(&seq[..t]);
            loo.extend_from_slice(&seq[t + 1..]);
            (median(&loo) - theta_n).abs() / denom
        })
        .fold(0.0f64, f64::max);

    // (D3) Tail adjustment: running-median increments over the last W.
    let tail_adj = (n - w..n)
        .map(|k| (rm[k] - rm[k - 1]).abs() / denom)
        .fold(0.0f64, f64::max);

    // (D4) Rolling-window SD of windowed medians.
    let rolls: Vec<f64> = (w..=n).map(|k| median(&seq[k - w..k])).collect();
    let roll_sd = if rolls.len() < 2 {
        0.0
    } else {
        let m = rolls.iter().sum::<f64>() / rolls.len() as f64;
        let var = rolls.iter().map(|r| (r - m) * (r - m)).sum::<f64>() / (rolls.len() - 1) as f64;
        var.sqrt() / denom
    };

    StabilityMetrics {
        sup_norm,
        jackknife,
        tail_adj,
        roll_sd,
    }
}

/// One row of the Table 1 reproduction: metric summaries at one percentile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityRow {
    /// The percentile `p` whose per-sample sequence was diagnosed.
    pub p: f64,
    /// SupNorm at the 50th / 90th percentile across operators.
    pub sup_norm: (f64, f64),
    /// Jackknife at the 50th / 90th percentile across operators.
    pub jackknife: (f64, f64),
    /// TailAdj at the 50th / 90th percentile across operators.
    pub tail_adj: (f64, f64),
    /// RollSD at the 50th / 90th percentile across operators.
    pub roll_sd: (f64, f64),
}

/// Computes Table 1 rows: for each requested percentile, run the four
/// diagnostics on every operator's per-sample absolute-error sequence and
/// summarize across operators at the 50th and 90th percentiles.
pub fn stability_table(record: &CalibrationRecord, ps: &[f64], w: usize) -> Vec<StabilityRow> {
    ps.iter()
        .filter_map(|&p| {
            let gi = grid_index(p)?;
            let mut sup = Vec::new();
            let mut jk = Vec::new();
            let mut tail = Vec::new();
            let mut roll = Vec::new();
            for node in &record.nodes {
                let seq: Vec<f64> = record.sequences[node].iter().map(|pp| pp.abs[gi]).collect();
                let m = diagnostics(&seq, w);
                sup.push(m.sup_norm);
                jk.push(m.jackknife);
                tail.push(m.tail_adj);
                roll.push(m.roll_sd);
            }
            let summary = |v: &[f64]| (percentile(v, 50.0), percentile(v, 90.0));
            Some(StabilityRow {
                p,
                sup_norm: summary(&sup),
                jackknife: summary(&jk),
                tail_adj: summary(&tail),
                roll_sd: summary(&roll),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_rel_change_properties() {
        assert_eq!(sym_rel_change(1.0, 1.0), 0.0);
        assert!((sym_rel_change(1.0, 0.0) - 2.0).abs() < 1e-9);
        assert_eq!(sym_rel_change(2.0, 1.0), sym_rel_change(1.0, 2.0));
    }

    #[test]
    fn running_medians_known() {
        let rm = running_medians(&[3.0, 1.0, 2.0]);
        assert_eq!(rm, vec![3.0, 2.0, 2.0]);
    }

    #[test]
    fn constant_sequence_fully_stable() {
        let seq = vec![1e-6; 50];
        let m = diagnostics(&seq, DEFAULT_WINDOW);
        assert_eq!(m.sup_norm, 0.0);
        assert_eq!(m.jackknife, 0.0);
        assert_eq!(m.tail_adj, 0.0);
        // Variance of identical values carries only f64 noise.
        assert!(m.roll_sd < 1e-12, "roll_sd {}", m.roll_sd);
    }

    #[test]
    fn near_stationary_sequence_small_metrics() {
        // Small jitter around a stable level: metrics stay modest.
        let seq: Vec<f64> = (0..50)
            .map(|i| 1e-6 * (1.0 + 0.02 * ((i * 7 % 10) as f64 / 10.0 - 0.5)))
            .collect();
        let m = diagnostics(&seq, DEFAULT_WINDOW);
        assert!(m.sup_norm < 0.05, "sup {}", m.sup_norm);
        assert!(m.jackknife < 0.05, "jk {}", m.jackknife);
        assert!(m.tail_adj < 0.05, "tail {}", m.tail_adj);
        assert!(m.roll_sd < 0.15, "roll {}", m.roll_sd);
    }

    #[test]
    fn drifting_sequence_flagged() {
        // Strong upward drift: SupNorm must be large.
        let seq: Vec<f64> = (0..50).map(|i| (i + 1) as f64).collect();
        let m = diagnostics(&seq, DEFAULT_WINDOW);
        assert!(m.sup_norm > 0.05, "sup {}", m.sup_norm);
    }

    #[test]
    fn outlier_inflates_jackknife() {
        // Short sequence so one point can move the median visibly.
        let mut seq = vec![1.0; 5];
        seq[2] = 100.0;
        let clean = diagnostics(&[1.0; 5], 3).jackknife;
        let dirty = diagnostics(&seq, 3).jackknife;
        assert!(dirty >= clean);
    }

    #[test]
    fn degenerate_sequences() {
        let m = diagnostics(&[], DEFAULT_WINDOW);
        assert_eq!(m.sup_norm, 0.0);
        let m1 = diagnostics(&[5.0], DEFAULT_WINDOW);
        assert_eq!(m1.jackknife, 0.0);
        let nan = diagnostics(&[f64::NAN, 1.0, 1.0], 2);
        assert!(nan.sup_norm.is_finite());
    }
}
