//! # tao-calib
//!
//! Cross-device empirical error calibration (§3.2 and Appendix B of the
//! TAO paper): element-wise absolute/relative error profiles over the
//! committed percentile grid (Eq. 1–4), max-envelopes across device pairs
//! and samples (Eq. 5–6), α-inflated committed thresholds (Eq. 7), the
//! Appendix B stability diagnostics (SupNorm / Jackknife / TailAdj /
//! RollSD), and the nondecreasing cap curve (Eq. 8) with its
//! order-statistics projection (Eq. 12).

pub mod calibrate;
pub mod cap;
pub mod error;
pub mod estimator;
pub mod json;
pub mod percentile;
pub mod profile;
pub mod stability;

pub use calibrate::{calibrate, calibrate_with_report, CalibrationRecord};
pub use cap::CapCurve;
pub use error::CalibError;
pub use estimator::{smoothed_envelope, TailEstimator};
pub use json::{bundle_to_json_pretty, threshold_from_json, threshold_to_json};
pub use percentile::{grid_index, grid_profile, median, percentile, PERCENTILE_GRID};
pub use profile::{
    elementwise_errors, error_profile, OperatorThreshold, PercentilePair, ThresholdBundle,
    DEFAULT_ALPHA, DEFAULT_EPS,
};
pub use stability::{
    diagnostics, running_medians, stability_table, sym_rel_change, StabilityMetrics, StabilityRow,
    DEFAULT_WINDOW,
};

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, CalibError>;
