//! Percentile computation and the committed percentile grid.

/// The paper's percentile grid `P = {0, 1, 5, 10, 15, …, 90, 95, 99, 100}`.
pub const PERCENTILE_GRID: [f64; 23] = [
    0.0, 1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0, 55.0, 60.0, 65.0, 70.0,
    75.0, 80.0, 85.0, 90.0, 95.0, 99.0, 100.0,
];

/// Index of a percentile value in [`PERCENTILE_GRID`], if present.
pub fn grid_index(p: f64) -> Option<usize> {
    PERCENTILE_GRID.iter().position(|&g| (g - p).abs() < 1e-9)
}

/// Linear-interpolation percentile of a sample (the NumPy default).
///
/// `p` is in `[0, 100]`. Returns `0` for an empty sample. Not-a-number
/// inputs are excluded, matching the paper's "exclude non-finite values"
/// convention.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    percentile_sorted(&v, p)
}

/// Percentile of an already-sorted, finite sample.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n == 1 {
        return sorted[0];
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Percentile-value vector over the committed grid.
pub fn grid_profile(values: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    PERCENTILE_GRID
        .iter()
        .map(|&p| percentile_sorted(&v, p))
        .collect()
}

/// Median of a sample (50th percentile; midpoint of central order
/// statistics for even counts).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_23_points_and_endpoints() {
        assert_eq!(PERCENTILE_GRID.len(), 23);
        assert_eq!(PERCENTILE_GRID[0], 0.0);
        assert_eq!(PERCENTILE_GRID[22], 100.0);
        assert_eq!(grid_index(50.0), Some(11));
        assert_eq!(grid_index(33.0), None);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 3.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 25.0), 2.5);
        assert_eq!(percentile(&v, 75.0), 7.5);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 100.0), 7.0);
    }

    #[test]
    fn nan_excluded() {
        let v = [1.0, f64::NAN, 3.0];
        assert_eq!(percentile(&v, 100.0), 3.0);
        assert_eq!(median(&v), 2.0);
    }

    #[test]
    fn grid_profile_monotone() {
        let v: Vec<f64> = (0..100).map(|i| (i * 7 % 100) as f64).collect();
        let prof = grid_profile(&v);
        for w in prof.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(prof.len(), PERCENTILE_GRID.len());
    }

    #[test]
    fn median_even_is_midpoint() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }
}
