//! Error types for calibration.

use core::fmt;

/// Errors from the calibration sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibError {
    /// Calibration requires at least two devices.
    NotEnoughDevices(usize),
    /// Calibration requires at least one input sample.
    NoSamples,
    /// Graph execution failed during the sweep.
    Graph(String),
    /// A calibration worker thread panicked.
    Worker,
    /// A committed threshold artifact failed to encode or decode.
    Json(String),
}

impl fmt::Display for CalibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibError::NotEnoughDevices(n) => {
                write!(f, "calibration needs >= 2 devices, got {n}")
            }
            CalibError::NoSamples => write!(f, "calibration needs at least one sample"),
            CalibError::Graph(m) => write!(f, "graph execution failed: {m}"),
            CalibError::Worker => write!(f, "calibration worker panicked"),
            CalibError::Json(m) => write!(f, "threshold JSON codec failed: {m}"),
        }
    }
}

impl std::error::Error for CalibError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CalibError::NotEnoughDevices(1).to_string().contains(">= 2"));
        assert!(CalibError::NoSamples.to_string().contains("sample"));
    }
}
