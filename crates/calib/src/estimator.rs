//! Tail-threshold estimators: the committed threshold bundle can be built
//! from the raw max envelope (Eq. 5–7) or from a smoothed-tail variant
//! that adds a tail-slack term on top of the envelope.
//!
//! The max envelope is a max-statistic and therefore fragile at small
//! calibration sample counts (the PR 2/PR 3 coverage saga): an honest
//! operator's fresh-input error can land just above the largest error seen
//! in calibration. The smoothed-tail estimator compensates by adding the
//! average gap between the largest and the `k` next-largest per-sample
//! envelope values — an exceedance-style tail-slack in the spirit of a
//! Hill/peaks-over-threshold correction, computed per grid coordinate.
//!
//! Both estimators are *prefix-monotone*: computed over nested calibration
//! sample sets, the resulting thresholds are pointwise non-decreasing in
//! the sample count, so the coverage-sweep monotonicity guarantees carry
//! over unchanged (`tests/tests/coverage.rs` asserts this differentially).

use crate::profile::PercentilePair;

/// Which tail statistic turns per-sample calibration envelopes into the
/// committed (pre-α) threshold envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailEstimator {
    /// The paper's raw max envelope (Eq. 5–6): pointwise max over samples.
    RawMax,
    /// Max envelope plus smoothed tail slack: per grid coordinate, the
    /// estimate over `n` samples with order statistics `y_1 ≥ y_2 ≥ …` is
    /// `y_1 + (y_1 − y_{k'+1}) / k'` with `k' = min(k, n−1)`, maximised
    /// over all sample prefixes (which makes it prefix-monotone and never
    /// below the raw max). `k = 0` degenerates to [`TailEstimator::RawMax`].
    SmoothedTail {
        /// Number of upper order statistics the tail slack averages over.
        k: usize,
    },
}

impl TailEstimator {
    /// The smoothed-tail variant at its documented default depth (`k = 4`).
    pub fn smoothed_default() -> Self {
        TailEstimator::SmoothedTail { k: 4 }
    }

    /// Short label for CSV columns and reports.
    pub fn label(&self) -> String {
        match self {
            TailEstimator::RawMax => "raw-max".to_string(),
            TailEstimator::SmoothedTail { k } => format!("smoothed-tail-k{k}"),
        }
    }
}

/// Smoothed-tail value for one grid coordinate: the prefix-maximised
/// `y_1 + (y_1 − y_{k'+1}) / k'` over the per-sample values in canonical
/// sample order.
fn smoothed_coordinate(values: &[f64], k: usize) -> f64 {
    let mut sorted: Vec<f64> = Vec::with_capacity(values.len());
    let mut worst = 0.0f64;
    for &v in values {
        // Maintain the prefix in descending order (n ≤ 48, so the insert
        // is cheap and keeps the whole pass allocation-light).
        let pos = sorted.partition_point(|&x| x > v);
        sorted.insert(pos, v);
        let n = sorted.len();
        let kk = k.min(n - 1);
        let y1 = sorted[0];
        let est = if kk == 0 {
            y1
        } else {
            y1 + (y1 - sorted[kk]) / kk as f64
        };
        worst = worst.max(est);
    }
    worst
}

/// Applies the smoothed-tail estimator to one operator's per-sample
/// envelope sequence (in canonical sample order), producing the pre-α
/// threshold envelope. The result dominates the raw max envelope pointwise.
pub fn smoothed_envelope(sequence: &[PercentilePair], k: usize) -> PercentilePair {
    if sequence.is_empty() {
        return PercentilePair::zero();
    }
    let grid_len = sequence[0].abs.len();
    let mut out = PercentilePair {
        abs: Vec::with_capacity(grid_len),
        rel: Vec::with_capacity(grid_len),
    };
    let mut column: Vec<f64> = Vec::with_capacity(sequence.len());
    for g in 0..grid_len {
        column.clear();
        column.extend(sequence.iter().map(|p| p.abs[g]));
        out.abs.push(smoothed_coordinate(&column, k));
        column.clear();
        column.extend(sequence.iter().map(|p| p.rel[g]));
        out.rel.push(smoothed_coordinate(&column, k));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(abs: Vec<f64>) -> PercentilePair {
        PercentilePair {
            rel: abs.iter().map(|v| v / 2.0).collect(),
            abs,
        }
    }

    #[test]
    fn k_zero_is_raw_max() {
        let seq = vec![pair(vec![1.0, 3.0]), pair(vec![2.0, 1.0])];
        let env = smoothed_envelope(&seq, 0);
        assert_eq!(env.abs, vec![2.0, 3.0]);
        assert_eq!(env.rel, vec![1.0, 1.5]);
    }

    #[test]
    fn smoothed_dominates_raw_max() {
        let seq: Vec<PercentilePair> = (0..20)
            .map(|i| pair(vec![(i as f64 * 0.7).sin().abs(), i as f64 * 0.01]))
            .collect();
        for k in [1, 2, 4, 8] {
            let smoothed = smoothed_envelope(&seq, k);
            let raw = smoothed_envelope(&seq, 0);
            for (s, r) in smoothed.abs.iter().zip(&raw.abs) {
                assert!(s >= r, "smoothed {s} below raw max {r} at k={k}");
            }
            for (s, r) in smoothed.rel.iter().zip(&raw.rel) {
                assert!(s >= r);
            }
        }
    }

    #[test]
    fn slack_matches_hand_computation() {
        // Values 4, 2, 1 with k = 2: prefix maxima are
        //   n=1: 4;  n=2: 4 + (4-2)/1 = 6;  n=3: 4 + (4-1)/2 = 5.5.
        let seq = vec![pair(vec![4.0]), pair(vec![2.0]), pair(vec![1.0])];
        let env = smoothed_envelope(&seq, 2);
        assert_eq!(env.abs, vec![6.0]);
    }

    #[test]
    fn prefix_monotone_under_nested_samples() {
        let seq: Vec<PercentilePair> = (0..16)
            .map(|i| pair(vec![((i * 37 + 11) % 17) as f64 / 5.0]))
            .collect();
        for k in [1, 4] {
            let mut prev = 0.0f64;
            for n in 1..=seq.len() {
                let env = smoothed_envelope(&seq[..n], k);
                assert!(
                    env.abs[0] >= prev,
                    "smoothed envelope shrank with more samples at n={n}"
                );
                prev = env.abs[0];
            }
        }
    }

    #[test]
    fn empty_sequence_is_zero() {
        let env = smoothed_envelope(&[], 4);
        assert!(env.abs.iter().all(|&v| v == 0.0));
    }
}
