//! Runnable examples for the TAO workspace live under `examples/*.rs`;
//! this stub only anchors the package.
