//! Calibration tool: run the offline cross-device sweep for a model,
//! inspect per-operator envelopes and stability, and export the committed
//! threshold bundle as JSON.
//!
//! Run with `cargo run --release -p tao-examples --example calibration_tool`.

use tao_calib::{calibrate, stability_table, DEFAULT_ALPHA, DEFAULT_WINDOW, PERCENTILE_GRID};
use tao_device::Fleet;
use tao_merkle::MerkleTree;
use tao_models::{data, qwen, QwenConfig};

fn main() {
    println!("TAO calibration tool\n");
    let cfg = QwenConfig::small();
    let model = qwen::build(cfg, 9);
    let fleet = Fleet::standard();
    println!(
        "model: {} ({} ops); fleet: {:?}",
        model.name,
        model.num_ops(),
        fleet.devices().iter().map(|d| d.name()).collect::<Vec<_>>()
    );

    let samples = data::token_dataset(20, cfg.seq, cfg.vocab, 800);
    let record = calibrate(&model.graph, &samples, &fleet).expect("calibration");
    println!(
        "calibrated {} compute operators over {} samples",
        record.nodes.len(),
        samples.len()
    );

    // Show the five loosest operators by p99 absolute envelope.
    let p99 = PERCENTILE_GRID
        .iter()
        .position(|&p| p == 99.0)
        .expect("grid has 99");
    let mut by_p99: Vec<_> = record
        .nodes
        .iter()
        .zip(&record.mnemonics)
        .zip(&record.envelopes)
        .map(|((id, m), env)| (*id, m.clone(), env.abs[p99]))
        .collect();
    by_p99.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
    println!("\nloosest operators (p99 abs envelope):");
    for (id, mnemonic, v) in by_p99.iter().take(5) {
        println!("  {id} {mnemonic:<12} {v:.3e}");
    }

    // Stability diagnostics.
    println!("\nstability (p50 sequences, W = {DEFAULT_WINDOW}):");
    for row in stability_table(&record, &[50.0], DEFAULT_WINDOW) {
        println!(
            "  SupNorm {:.3}/{:.3}  Jackknife {:.3}/{:.3}  TailAdj {:.3}/{:.3}  RollSD {:.3}/{:.3}",
            row.sup_norm.0,
            row.sup_norm.1,
            row.jackknife.0,
            row.jackknife.1,
            row.tail_adj.0,
            row.tail_adj.1,
            row.roll_sd.0,
            row.roll_sd.1
        );
    }

    // Inflate, commit and export.
    let bundle = record.into_thresholds(DEFAULT_ALPHA);
    let leaves = bundle.to_leaves();
    let root = MerkleTree::from_leaves(&leaves).root();
    println!("\nthreshold root r_e = {}", tao_merkle::to_hex(&root));
    let json = tao_calib::bundle_to_json_pretty(&bundle);
    let path = std::env::temp_dir().join("tao_thresholds.json");
    std::fs::write(&path, &json).expect("writable temp dir");
    println!(
        "exported {} bytes of committed thresholds to {}",
        json.len(),
        path.display()
    );
}
