//! Quickstart: deploy a model, serve an honest inference, and watch it
//! finalize through the optimistic protocol.
//!
//! Run with `cargo run --release -p tao-examples --example quickstart`.

use tao::{default_coordinator, deploy, SessionBuilder, SharedCoordinator};
use tao_device::Fleet;
use tao_merkle::to_hex;
use tao_models::{bert, data, BertConfig};

fn main() {
    println!("TAO quickstart: tolerance-aware optimistic verification\n");

    // Phase 0: trace the model, calibrate empirical thresholds across the
    // device fleet, and commit weights/graph/thresholds.
    let cfg = BertConfig::small();
    let model = bert::build(cfg, 1);
    println!(
        "traced model: {} ({} operators)",
        model.name,
        model.num_ops()
    );
    // Calibration coverage matters: the screening compares percentile
    // profiles of a short logits lane, so give the envelope enough samples.
    let samples = data::token_dataset(32, cfg.seq, cfg.vocab, 100);
    let deployment = deploy(model, Fleet::standard(), &samples, 3.0).expect("calibration succeeds");
    println!(
        "weight root    r_w = {}",
        to_hex(&deployment.commitment.weight_root)
    );
    println!(
        "graph root     r_g = {}",
        to_hex(&deployment.commitment.graph_root)
    );
    println!(
        "threshold root r_e = {}",
        to_hex(&deployment.commitment.threshold_root)
    );

    // Phase 1: an honest proposer serves a user request. The session
    // builder drives submit -> screen -> settle in one shot.
    let coordinator = SharedCoordinator::new(default_coordinator().expect("economics feasible"));
    let inputs = vec![bert::sample_ids(cfg, 42)];
    let report = SessionBuilder::new(&deployment, inputs)
        .run(&coordinator)
        .expect("session runs");

    println!(
        "\nclaim #{} posted; challenged: {}",
        report.claim_id, report.challenged
    );
    println!("final status: {:?}", report.final_status);
    let lane = report.output.data();
    let pred = lane
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("nonempty logits");
    println!("predicted class: {pred}");
    assert!(report.proposer_prevailed());
    println!("\nThe honest result finalized after the challenge window — no dispute,");
    println!("no determinism constraints, native kernels on every device.");
}
