//! Attack lab: probe the admissible sets with the §4.4 PGD/Adam attacks
//! and compare how far an adversary gets under empirical thresholds vs
//! theoretical bounds.
//!
//! Run with `cargo run --release -p tao-examples --example attack_lab`.

use tao::deploy;
use tao_attack::{bucket_targets, run_attack, AttackConfig, AttackProblem, ProjectionKind};
use tao_device::Fleet;
use tao_models::{bert, data, BertConfig};

fn main() {
    println!("TAO attack lab\n");
    let cfg = BertConfig::small();
    let model = bert::build(cfg, 5);
    let samples = data::token_dataset(8, cfg.seq, cfg.vocab, 300);
    let deployment = deploy(model, Fleet::standard(), &samples, 3.0).expect("deployment");

    let inputs = vec![bert::sample_ids(cfg, 21)];
    let problem = AttackProblem {
        graph: &deployment.model.graph,
        inputs: &inputs,
        logits_node: deployment.model.logits,
        thresholds: &deployment.thresholds,
    };
    let lane = problem.honest_logits().expect("logits");
    println!("honest logits: {lane:.3?}");

    for (kind, label) in [
        (ProjectionKind::Empirical, "empirical thresholds (x1)"),
        (
            ProjectionKind::TheoreticalProbabilistic,
            "theoretical bounds, probabilistic (x1)",
        ),
        (
            ProjectionKind::TheoreticalDeterministic,
            "theoretical bounds, deterministic (x1)",
        ),
    ] {
        println!("\n-- projecting onto {label} --");
        for (bucket, target) in bucket_targets(&lane, 4) {
            let r = run_attack(&problem, target, &AttackConfig::paper_default(kind, 1.0))
                .expect("attack runs");
            println!(
                "  bucket {bucket} target {target}: success={} m0={:.3} m'={:.3} progress={:.1}% ({} iters)",
                r.success,
                r.m0,
                r.m_final,
                100.0 * r.delta_rel,
                r.iters
            );
        }
    }
    println!(
        "\nExpected: no successes and near-zero progress under empirical\n\
         thresholds; visibly more progress under worst-case theoretical bounds\n\
         (deterministic > probabilistic), motivating the committee leaf check."
    );
}
