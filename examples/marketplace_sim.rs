//! Inference-marketplace simulation: a stream of jobs served by a mix of
//! honest and cheating proposers, with voluntary challengers and
//! randomized audits enforcing the §5.5 economics.
//!
//! Run with `cargo run --release -p tao-examples --example marketplace_sim`.

use rand::Rng;
use rand::SeedableRng;
use tao::{deploy, run_session, ProposerBehavior, SessionConfig};
use tao_device::{Device, Fleet};
use tao_graph::{execute, Perturbations};
use tao_models::{data, resnet, ResNetConfig};
use tao_protocol::{Coordinator, EconParams};
use tao_tensor::Tensor;

fn main() {
    println!("TAO marketplace simulation\n");
    let cfg = ResNetConfig::small();
    let model = resnet::build(cfg, 2);
    let samples = data::image_dataset(24, cfg.in_channels, cfg.image, cfg.classes, 600);
    let deployment = deploy(model, Fleet::standard(), &samples, 3.0).expect("deployment");

    let econ = EconParams::default_market();
    let (lo, hi) = econ.feasible_slash_region().expect("nonempty region");
    let slash = (lo + hi) / 2.0;
    println!("economics: feasible S_slash region ({lo:.1}, {hi:.1}], using {slash:.1}");
    let mut coordinator = Coordinator::new(econ, slash).expect("feasible");
    coordinator.fund("proposer", 50_000.0);
    coordinator.fund("challenger", 5_000.0);

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let jobs = 12;
    let mut caught = 0;
    let mut cheated = 0;
    let mut finalized = 0;
    for job in 0..jobs {
        let inputs = vec![data::class_image(
            cfg.in_channels,
            cfg.image,
            job % cfg.classes,
            7_000 + job as u64,
        )];
        // 1-in-3 jobs are served by a cheat that perturbs a random op.
        let cheat = rng.gen_ratio(1, 3);
        let behavior = if cheat {
            cheated += 1;
            let nodes = deployment.model.graph.compute_nodes();
            let victim = nodes[rng.gen_range(0..nodes.len())];
            let honest = execute(
                &deployment.model.graph,
                &inputs,
                Device::rtx4090_like().config(),
                None,
            )
            .expect("forward");
            let shape = honest.values[victim.0].dims().to_vec();
            // Non-uniform cheat: a uniform constant upstream of a softmax
            // would be absorbed by shift invariance and change nothing.
            let delta = Tensor::<f32>::randn(&shape, 8_000 + job as u64).mul_scalar(0.05);
            let mut p = Perturbations::new();
            p.insert(victim, delta);
            ProposerBehavior::Malicious(p)
        } else {
            ProposerBehavior::Honest
        };
        let report = run_session(
            &deployment,
            &mut coordinator,
            &SessionConfig::default(),
            &inputs,
            &behavior,
        )
        .expect("session");
        let outcome = if report.proposer_prevailed() {
            finalized += 1;
            "finalized"
        } else {
            caught += 1;
            "SLASHED"
        };
        println!(
            "job {job:2}: {}  -> {outcome}",
            if cheat {
                "cheating proposer"
            } else {
                "honest proposer  "
            }
        );
    }
    println!("\n{jobs} jobs: {finalized} finalized, {caught}/{cheated} cheats caught");
    println!(
        "balances: proposer {:.1}, challenger {:.1}, committee pool {:.1}",
        coordinator.balance("proposer"),
        coordinator.balance("challenger"),
        coordinator.balance("committee-pool"),
    );
    println!(
        "coordinator gas ledger: {:.1} kgas across all interactions",
        coordinator.gas.kgas()
    );
    assert_eq!(caught, cheated, "every cheat must be caught");
}
