//! Inference-marketplace simulation: a stream of jobs served by a mix of
//! honest and cheating proposers, with voluntary challengers enforcing the
//! §5.5 economics. The whole batch runs *concurrently* on the session
//! scheduler over one shared deployment and coordinator — claim ids and
//! settlement outcomes are identical to a serial run.
//!
//! Run with `cargo run --release -p tao-examples --example marketplace_sim`;
//! pass a worker count as the first argument to size the scheduler pool
//! (default: host parallelism).

use rand::Rng;
use rand::SeedableRng;
use tao::{deploy, ProposerBehavior, Scheduler, SessionBuilder, SharedCoordinator};
use tao_device::{Device, Fleet};
use tao_graph::{execute, Perturbations};
use tao_models::{data, resnet, ResNetConfig};
use tao_protocol::{Coordinator, EconParams};
use tao_tensor::Tensor;

fn main() {
    println!("TAO marketplace simulation\n");
    let cfg = ResNetConfig::small();
    let model = resnet::build(cfg, 2);
    // 24 calibration samples and alpha = 3. Max-envelope thresholds are
    // max-statistics, so at this scale an honest operator's fresh-input
    // tail can marginally exceed its own tau (exceedance ~1.5); the
    // dispute game's most-offending-child selection keeps the descent
    // pointed at the real cheat anyway (its exceedance sits orders of
    // magnitude higher), which is what let this sim drop the PR 2
    // workaround of 48 samples + alpha = 5. The honest-coverage sweep
    // lives in tests/tests/coverage.rs.
    let samples = data::image_dataset(24, cfg.in_channels, cfg.image, cfg.classes, 600);
    let deployment = deploy(model, Fleet::standard(), &samples, 3.0).expect("deployment");

    let econ = EconParams::default_market();
    let (lo, hi) = econ.feasible_slash_region().expect("nonempty region");
    let slash = (lo + hi) / 2.0;
    println!("economics: feasible S_slash region ({lo:.1}, {hi:.1}], using {slash:.1}");
    let coordinator = Coordinator::new(econ, slash).expect("feasible");
    // Concurrent sessions escrow all their deposits at once, so accounts
    // are funded for the whole batch up front.
    coordinator.fund("proposer", 50_000);
    coordinator.fund("challenger", 5_000);
    let coordinator = SharedCoordinator::new(coordinator);

    // Draw the job stream first (same RNG sequence as the old serial
    // loop), then hand the whole batch to the scheduler.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let jobs = 12;
    let mut cheats = Vec::new();
    let mut builders = Vec::new();
    for job in 0..jobs {
        let inputs = vec![data::class_image(
            cfg.in_channels,
            cfg.image,
            job % cfg.classes,
            7_000 + job as u64,
        )];
        // 1-in-3 jobs are served by a cheat that perturbs a random op.
        let cheat = rng.gen_ratio(1, 3);
        let behavior = if cheat {
            let nodes = deployment.model.graph.compute_nodes();
            let victim = nodes[rng.gen_range(0..nodes.len())];
            let honest = execute(
                &deployment.model.graph,
                &inputs,
                Device::rtx4090_like().config(),
                None,
            )
            .expect("forward");
            let shape = honest.values[victim.0].dims().to_vec();
            // Non-uniform cheat: a uniform constant upstream of a softmax
            // would be absorbed by shift invariance and change nothing.
            let delta = Tensor::<f32>::randn(&shape, 8_000 + job as u64).mul_scalar(0.05);
            let mut p = Perturbations::new();
            p.insert(victim, delta);
            ProposerBehavior::Malicious(p)
        } else {
            ProposerBehavior::Honest
        };
        cheats.push(cheat);
        builders.push(SessionBuilder::new(&deployment, inputs).behavior(behavior));
    }

    let scheduler = match std::env::args().nth(1) {
        Some(w) => Scheduler::with_threads(w.parse().expect("worker count")),
        None => Scheduler::new(),
    };
    println!("scheduler pool: {} workers", scheduler.threads());
    let start = std::time::Instant::now();
    let reports = scheduler
        .run(&coordinator, builders)
        .expect("sessions run");
    let secs = start.elapsed().as_secs_f64();

    let mut caught = 0;
    let mut finalized = 0;
    let cheated = cheats.iter().filter(|&&c| c).count();
    for (job, (report, &cheat)) in reports.iter().zip(&cheats).enumerate() {
        assert_eq!(report.claim_id, job as u64, "deterministic claim ids");
        let outcome = if report.proposer_prevailed() {
            finalized += 1;
            "finalized"
        } else {
            caught += 1;
            "SLASHED"
        };
        println!(
            "job {job:2}: {}  -> {outcome}",
            if cheat {
                "cheating proposer"
            } else {
                "honest proposer  "
            }
        );
    }
    println!(
        "\n{jobs} jobs in {secs:.2}s on the scheduler: {finalized} finalized, \
         {caught}/{cheated} cheats caught"
    );
    println!(
        "balances: proposer {}, challenger {}, committee pool {}",
        coordinator.balance("proposer"),
        coordinator.balance("challenger"),
        coordinator.balance("committee-pool"),
    );
    println!(
        "coordinator gas ledger: {:.1} kgas across all interactions",
        coordinator.lock().gas().kgas()
    );
    assert_eq!(caught, cheated, "every cheat must be caught");
    // Value conservation: whatever the settlement interleaving, the
    // fixed-point ledger balances out against its injected supply exactly.
    let ledger = coordinator.lock().ledger();
    assert_eq!(
        ledger.total_value(),
        ledger.injected(),
        "ledger conservation violated"
    );
}
