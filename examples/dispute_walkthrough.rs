//! Dispute walkthrough: a malicious proposer perturbs a mid-graph
//! operator; the challenger localizes it round by round and the leaf is
//! adjudicated.
//!
//! Run with `cargo run --release -p tao-examples --example dispute_walkthrough`.

use tao::{
    default_coordinator, deploy, ProposerBehavior, SessionBuilder, SessionConfig, SharedCoordinator,
};
use tao_device::{Device, Fleet};
use tao_graph::{execute, Perturbations};
use tao_models::{data, qwen, QwenConfig};
use tao_protocol::DisputeResult;
use tao_tensor::Tensor;

fn main() {
    println!("TAO dispute walkthrough\n");
    let cfg = QwenConfig::small();
    let model = qwen::build(cfg, 3);
    let samples = data::token_dataset(24, cfg.seq, cfg.vocab, 500);
    let deployment = deploy(model, Fleet::standard(), &samples, 3.0).expect("deployment");
    let inputs = vec![qwen::sample_ids(cfg, 7)];

    // The adversary: perturb a mid-graph SwiGLU output.
    let graph = &deployment.model.graph;
    let target = graph
        .nodes()
        .iter()
        .find(|n| n.name.contains("layers1.mlp.glu"))
        .map(|n| n.id)
        .expect("mlp node exists");
    let honest = execute(graph, &inputs, Device::rtx4090_like().config(), None).expect("forward");
    let shape = honest.values[target.0].dims().to_vec();
    let mut perturb = Perturbations::new();
    perturb.insert(target, Tensor::<f32>::randn(&shape, 99).mul_scalar(0.03));
    println!(
        "adversary perturbs node {target} ({})",
        graph.node(target).expect("exists").name
    );

    // Drive the session phase by phase instead of one-shot `run()`, to
    // watch each protocol step land on the coordinator.
    let coordinator = SharedCoordinator::new(default_coordinator().expect("economics feasible"));
    let n_way = 4;
    let mut session = SessionBuilder::new(&deployment, inputs)
        .config(SessionConfig {
            n_way,
            ..SessionConfig::default()
        })
        .behavior(ProposerBehavior::Malicious(perturb))
        .submit(&coordinator)
        .expect("claim posts");
    println!("claim #{} posted", session.claim_id());

    let flagged = session.screen().expect("screening runs");
    assert!(flagged, "perturbation must trip the screening");
    println!(
        "screening exceedance {:.2} -> challenge",
        session.screening().expect("screened").exceedance
    );

    session.dispute(&coordinator).expect("dispute runs");
    let report = session.settle(&coordinator).expect("settlement");
    let dispute = report.dispute.as_ref().expect("dispute ran");
    assert_eq!(
        dispute.challenger_forward_passes, 0,
        "the dispute reuses the screening trace"
    );
    println!("\ndispute game (N = {n_way}), screening trace reused:");
    for r in &dispute.rounds {
        println!(
            "  round {}: range [{}, {}) -> child {} ({} Merkle checks, {:.2} MFLOP re-executed)",
            r.round,
            r.range.0,
            r.range.1,
            r.chosen,
            r.merkle_checks,
            r.selection_flops as f64 / 1e6
        );
    }
    match dispute.result {
        DisputeResult::Leaf(leaf) => {
            println!(
                "\nlocalized to operator {leaf} ({}) — the perturbed node: {}",
                graph.node(leaf).expect("exists").name,
                leaf == target
            );
        }
        DisputeResult::NoOffendingChild { round } => {
            println!("\nsearch went cold at round {round} (unexpected here)");
        }
        DisputeResult::CommitmentBreach { round, node } => {
            println!(
                "\nreveal for node {node} failed against the committed trace root at \
                 round {round} (unexpected here: this proposer commits honestly)"
            );
        }
    }
    println!(
        "reveals verified against the C0-bound trace root: {}",
        dispute.reveal_checks
    );
    let (path, verdict) = report.verdict.expect("leaf adjudicated");
    println!("adjudication path: {path:?}; verdict: {verdict:?}");
    println!("dispute gas: {:.1} kgas", dispute.gas.kgas());
    println!("final status: {:?}", report.final_status);
    assert!(!report.proposer_prevailed(), "fraud must be slashed");
}
